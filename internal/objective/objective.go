// Package objective implements the loss functions of the GBDT training
// objective and their first/second-order gradients (the g_i, h_i of the
// paper's Eq. 1). All engines consume gradients through the gh.Buffer
// abstraction, so objectives are interchangeable.
package objective

import (
	"fmt"
	"math"

	"harpgbdt/internal/gh"
)

// Objective computes per-row gradients of a loss at the current raw
// predictions, plus the transformation from raw score to output.
type Objective interface {
	// Name identifies the objective ("binary:logistic", "reg:squarederror").
	Name() string
	// BaseScore returns the optimal constant raw prediction for the labels
	// (the boosting starting point).
	BaseScore(labels []float32) float64
	// Gradients fills grad[i] with (g_i, h_i) of loss(pred[i], labels[i]).
	Gradients(preds []float64, labels []float32, grad gh.Buffer)
	// Transform maps a raw margin to the output scale (sigmoid for
	// logistic, identity for regression).
	Transform(margin float64) float64
}

// PointLoss is implemented by objectives that can report their pointwise
// loss at a raw margin (used for per-iteration loss reporting; gradient
// computation never needs it).
type PointLoss interface {
	// Loss returns loss(margin, label) on the raw-margin scale.
	Loss(margin float64, label float32) float64
}

// MeanLoss returns the mean pointwise loss of the objective over the
// margins, or NaN when the objective does not implement PointLoss (e.g. a
// weighted wrapper) or the input is empty.
func MeanLoss(o Objective, margins []float64, labels []float32) float64 {
	pl, ok := o.(PointLoss)
	if !ok || len(margins) == 0 || len(margins) != len(labels) {
		return math.NaN()
	}
	s := 0.0
	for i := range margins {
		s += pl.Loss(margins[i], labels[i])
	}
	return s / float64(len(margins))
}

// New returns the objective registered under name.
func New(name string) (Objective, error) {
	switch name {
	case "binary:logistic", "logistic":
		return Logistic{}, nil
	case "reg:squarederror", "squarederror", "mse":
		return SquaredError{}, nil
	default:
		return nil, fmt.Errorf("objective: unknown objective %q", name)
	}
}

// Logistic is binary cross-entropy on labels in {0, 1} with raw margins:
// g = sigmoid(margin) - y, h = sigmoid(margin) * (1 - sigmoid(margin)).
type Logistic struct{}

// Name implements Objective.
func (Logistic) Name() string { return "binary:logistic" }

// BaseScore returns log(p/(1-p)) for the positive rate p, clamped away from
// the degenerate all-one/all-zero cases.
func (Logistic) BaseScore(labels []float32) float64 {
	if len(labels) == 0 {
		return 0
	}
	pos := 0.0
	for _, y := range labels {
		pos += float64(y)
	}
	p := pos / float64(len(labels))
	const eps = 1e-6
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	return math.Log(p / (1 - p))
}

// Gradients implements Objective.
func (Logistic) Gradients(preds []float64, labels []float32, grad gh.Buffer) {
	for i := range grad {
		p := sigmoid(preds[i])
		grad[i] = gh.Pair{G: p - float64(labels[i]), H: math.Max(p*(1-p), 1e-16)}
	}
}

// Transform implements Objective.
func (Logistic) Transform(margin float64) float64 { return sigmoid(margin) }

// Loss implements PointLoss: binary cross-entropy, clamped away from
// log(0).
func (Logistic) Loss(margin float64, label float32) float64 {
	p := sigmoid(margin)
	const eps = 1e-15
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	y := float64(label)
	return -(y*math.Log(p) + (1-y)*math.Log(1-p))
}

// SquaredError is 1/2 (pred-y)^2: g = pred - y, h = 1.
type SquaredError struct{}

// Name implements Objective.
func (SquaredError) Name() string { return "reg:squarederror" }

// BaseScore returns the label mean.
func (SquaredError) BaseScore(labels []float32) float64 {
	if len(labels) == 0 {
		return 0
	}
	s := 0.0
	for _, y := range labels {
		s += float64(y)
	}
	return s / float64(len(labels))
}

// Gradients implements Objective.
func (SquaredError) Gradients(preds []float64, labels []float32, grad gh.Buffer) {
	for i := range grad {
		grad[i] = gh.Pair{G: preds[i] - float64(labels[i]), H: 1}
	}
}

// Transform implements Objective.
func (SquaredError) Transform(margin float64) float64 { return margin }

// Loss implements PointLoss: 1/2 (margin - y)^2, matching the gradients.
func (SquaredError) Loss(margin float64, label float32) float64 {
	d := margin - float64(label)
	return 0.5 * d * d
}

func sigmoid(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}
