package dataset

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadLibSVM(t *testing.T) {
	in := `1 0:1.5 2:3
# comment line

0 1:2.5
1
`
	csr, labels, err := ReadLibSVM(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 3 || labels[0] != 1 || labels[1] != 0 || labels[2] != 1 {
		t.Fatalf("labels %v", labels)
	}
	if csr.N != 3 || csr.M != 3 {
		t.Fatalf("dims %dx%d", csr.N, csr.M)
	}
	cols, vals := csr.Row(0)
	if len(cols) != 2 || cols[0] != 0 || vals[1] != 3 {
		t.Fatalf("row 0: %v %v", cols, vals)
	}
	if cols, _ := csr.Row(2); len(cols) != 0 {
		t.Fatal("label-only row should be empty")
	}
}

func TestReadLibSVMExplicitFeatureCount(t *testing.T) {
	csr, _, err := ReadLibSVM(strings.NewReader("1 0:1\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if csr.M != 10 {
		t.Fatalf("M = %d, want 10", csr.M)
	}
}

func TestReadLibSVMErrors(t *testing.T) {
	cases := []string{
		"x 0:1\n",     // bad label
		"1 0:abc\n",   // bad value
		"1 :1\n",      // missing index
		"1 -1:2\n",    // negative index
		"1 0:1 0:2\n", // duplicate column
	}
	for _, in := range cases {
		if _, _, err := ReadLibSVM(strings.NewReader(in), 0); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestLibSVMWriteReadRoundTrip(t *testing.T) {
	d := NewDense(5, 3)
	labels := make([]float32, 5)
	for i := 0; i < 5; i++ {
		labels[i] = float32(i % 2)
		for f := 0; f < 3; f++ {
			if (i+f)%4 == 0 {
				d.SetMissing(i, f)
			} else {
				d.Set(i, f, float32(i)+float32(f)*0.5)
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteLibSVM(&buf, d, labels); err != nil {
		t.Fatal(err)
	}
	csr, labels2, err := ReadLibSVM(bytes.NewReader(buf.Bytes()), 3)
	if err != nil {
		t.Fatal(err)
	}
	d2 := csr.ToDense()
	for i := 0; i < 5; i++ {
		if labels[i] != labels2[i] {
			t.Fatalf("label %d mismatch", i)
		}
		for f := 0; f < 3; f++ {
			a, b := d.At(i, f), d2.At(i, f)
			if (a != a) != (b != b) {
				t.Fatalf("missing flag mismatch at %d,%d", i, f)
			}
			if a == a && a != b {
				t.Fatalf("value mismatch at %d,%d: %v vs %v", i, f, a, b)
			}
		}
	}
}

func TestReadCSV(t *testing.T) {
	in := "1,0.5,,3\n0,1.5,2.5,\n"
	d, labels, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 2 || d.M != 3 {
		t.Fatalf("dims %dx%d", d.N, d.M)
	}
	if labels[0] != 1 || labels[1] != 0 {
		t.Fatalf("labels %v", labels)
	}
	if !d.IsMissing(0, 1) || !d.IsMissing(1, 2) {
		t.Fatal("empty fields should be missing")
	}
	if d.At(0, 0) != 0.5 || d.At(1, 1) != 2.5 {
		t.Fatal("values wrong")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, _, err := ReadCSV(strings.NewReader("a,1\n")); err == nil {
		t.Fatal("bad label accepted")
	}
	if _, _, err := ReadCSV(strings.NewReader("1,2\n1,2,3\n")); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, _, err := ReadCSV(strings.NewReader("1,x\n")); err == nil {
		t.Fatal("bad value accepted")
	}
}

func TestLoadFilesEndToEnd(t *testing.T) {
	dir := t.TempDir()
	libsvmPath := filepath.Join(dir, "data.libsvm")
	csvPath := filepath.Join(dir, "data.csv")

	d := NewDense(20, 2)
	labels := make([]float32, 20)
	for i := 0; i < 20; i++ {
		labels[i] = float32(i % 2)
		d.Set(i, 0, float32(i))
		d.Set(i, 1, float32(20-i))
	}
	// Write libsvm.
	{
		var buf bytes.Buffer
		if err := WriteLibSVM(&buf, d, labels); err != nil {
			t.Fatal(err)
		}
		if err := writeFile(libsvmPath, buf.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	// Write CSV.
	{
		var sb strings.Builder
		for i := 0; i < 20; i++ {
			sb.WriteString("1,")
			sb.WriteString("2.5,")
			sb.WriteString("3.5\n")
		}
		if err := writeFile(csvPath, []byte(sb.String())); err != nil {
			t.Fatal(err)
		}
	}
	ds1, err := LoadLibSVMFile(libsvmPath, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	if ds1.NumRows() != 20 || ds1.NumFeatures() != 2 {
		t.Fatalf("libsvm dims %dx%d", ds1.NumRows(), ds1.NumFeatures())
	}
	ds2, err := LoadCSVFile(csvPath, 32)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.NumRows() != 20 || ds2.NumFeatures() != 2 {
		t.Fatalf("csv dims %dx%d", ds2.NumRows(), ds2.NumFeatures())
	}
	if _, err := LoadLibSVMFile(filepath.Join(dir, "nope"), 0, 32); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCacheRoundTrip(t *testing.T) {
	d := NewDense(30, 4)
	labels := make([]float32, 30)
	for i := 0; i < 30; i++ {
		labels[i] = float32(i%2) + 0.25
		for f := 0; f < 4; f++ {
			if (i+f)%7 == 0 {
				d.SetMissing(i, f)
			} else {
				d.Set(i, f, float32(i*f)*0.1)
			}
		}
	}
	ds, err := FromDense("cache-me", d, labels, 16)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCache(&buf, ds); err != nil {
		t.Fatal(err)
	}
	ds2, err := ReadCache(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Name != "cache-me" {
		t.Fatalf("name %q", ds2.Name)
	}
	if ds2.NumRows() != 30 || ds2.NumFeatures() != 4 {
		t.Fatal("dims mismatch")
	}
	for i := range ds.Labels {
		if ds.Labels[i] != ds2.Labels[i] {
			t.Fatalf("label %d mismatch", i)
		}
	}
	if !bytes.Equal(ds.Binned.Bins, ds2.Binned.Bins) {
		t.Fatal("bins mismatch")
	}
	for f := 0; f <= 4; f++ {
		if ds.Cuts.Ptr[f] != ds2.Cuts.Ptr[f] {
			t.Fatal("cut ptr mismatch")
		}
	}
	for k := range ds.Cuts.Vals {
		if ds.Cuts.Vals[k] != ds2.Cuts.Vals[k] {
			t.Fatal("cut vals mismatch")
		}
	}
}

func TestCacheRejectsGarbage(t *testing.T) {
	if _, err := ReadCache(bytes.NewReader([]byte("not a cache file at all........"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadCache(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestCacheFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.bin")
	d := NewDense(5, 2)
	for i := 0; i < 5; i++ {
		d.Set(i, 0, float32(i))
		d.Set(i, 1, float32(i*i))
	}
	ds, err := FromDense("f", d, make([]float32, 5), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCacheFile(path, ds); err != nil {
		t.Fatal(err)
	}
	ds2, err := LoadCacheFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ds.Binned.Bins, ds2.Binned.Bins) {
		t.Fatal("bins mismatch after file round trip")
	}
}

func TestNanF32(t *testing.T) {
	if v := nanF32(); !math.IsNaN(float64(v)) {
		t.Fatalf("nanF32() = %v", v)
	}
}

func writeFile(path string, data []byte) error {
	return osWriteFile(path, data)
}

func osWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
