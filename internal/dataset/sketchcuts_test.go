package dataset

import (
	"testing"

	"harpgbdt/internal/sched"
)

func TestBuildCutsSketchedApproximatesExact(t *testing.T) {
	d := randomDense(20000, 5, 21)
	exact := BuildCuts(d, 64)
	sk := BuildCutsSketched(d, 64, 0, nil)
	if err := sk.Validate(); err != nil {
		t.Fatal(err)
	}
	// Per feature: the sketched cuts must distribute the data over bins
	// with roughly even mass, like the exact cuts do. Compare the
	// empirical CDF positions of corresponding cut indices.
	for f := 0; f < 5; f++ {
		ec := exact.FeatureCuts(f)
		sc := sk.FeatureCuts(f)
		if len(sc) == 0 || len(ec) == 0 {
			t.Fatalf("feature %d: empty cuts", f)
		}
		// Count rows falling at or below each sketched cut; the largest
		// bin must not hold more than ~4x the even share.
		prevCount := 0
		maxShare := 0.0
		for _, cut := range sc {
			count := 0
			for i := 0; i < d.N; i++ {
				v := d.At(i, f)
				if v == v && v <= cut {
					count++
				}
			}
			share := float64(count-prevCount) / float64(d.N)
			if share > maxShare {
				maxShare = share
			}
			prevCount = count
		}
		even := 1.0 / float64(len(sc))
		if maxShare > 4*even {
			t.Fatalf("feature %d: largest sketched bin holds %.3f of mass (even share %.3f)", f, maxShare, even)
		}
	}
}

func TestBuildCutsSketchedParallelMatchesSerial(t *testing.T) {
	d := randomDense(5000, 6, 23)
	serial := BuildCutsSketched(d, 32, 512, nil)
	par := BuildCutsSketched(d, 32, 512, sched.NewPool(4))
	if len(serial.Vals) != len(par.Vals) {
		t.Fatalf("cut counts differ: %d vs %d", len(serial.Vals), len(par.Vals))
	}
	for k := range serial.Vals {
		if serial.Vals[k] != par.Vals[k] {
			t.Fatalf("cut %d differs", k)
		}
	}
}

func TestBuildCutsSketchedUsableForTraining(t *testing.T) {
	// Cuts from the sketch must produce a valid binned dataset.
	d := randomDense(3000, 4, 25)
	cuts := BuildCutsSketched(d, 32, 0, nil)
	bm := BinDense(d, cuts)
	if err := bm.Validate(cuts); err != nil {
		t.Fatal(err)
	}
	ds := &Dataset{Name: "sk", Labels: make([]float32, 3000), Binned: bm, Cuts: cuts}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
}
