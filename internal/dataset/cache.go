package dataset

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"harpgbdt/internal/safeio"
)

// cacheMagic identifies the binary dataset cache format.
const cacheMagic = uint32(0x48475244) // "HGRD"

const cacheVersion = uint32(1)

// WriteCache serializes a Dataset in a compact binary format so that binning
// (the one-time initialization the paper excludes from training time) can be
// skipped on subsequent runs.
func WriteCache(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	var hdr [4]uint32
	hdr[0], hdr[1] = cacheMagic, cacheVersion
	hdr[2], hdr[3] = uint32(ds.Binned.N), uint32(ds.Binned.M)
	for _, v := range hdr {
		if err := binary.Write(bw, le, v); err != nil {
			return err
		}
	}
	if err := writeString(bw, ds.Name); err != nil {
		return err
	}
	if err := binary.Write(bw, le, int32(ds.Cuts.MaxBins)); err != nil {
		return err
	}
	if err := binary.Write(bw, le, int32(len(ds.Cuts.Vals))); err != nil {
		return err
	}
	if err := binary.Write(bw, le, ds.Cuts.Ptr); err != nil {
		return err
	}
	if err := binary.Write(bw, le, ds.Cuts.Vals); err != nil {
		return err
	}
	if err := binary.Write(bw, le, ds.Labels); err != nil {
		return err
	}
	if _, err := bw.Write(ds.Binned.Bins); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCache deserializes a Dataset written by WriteCache.
func ReadCache(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(br, le, &hdr[i]); err != nil {
			return nil, err
		}
	}
	if hdr[0] != cacheMagic {
		return nil, fmt.Errorf("dataset cache: bad magic %#x", hdr[0])
	}
	if hdr[1] != cacheVersion {
		return nil, fmt.Errorf("dataset cache: unsupported version %d", hdr[1])
	}
	n, m := int(hdr[2]), int(hdr[3])
	if n < 0 || m < 0 || uint64(n)*uint64(m) > math.MaxInt32*uint64(256) {
		return nil, fmt.Errorf("dataset cache: implausible dimensions %dx%d", n, m)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	var maxBins, nCutVals int32
	if err := binary.Read(br, le, &maxBins); err != nil {
		return nil, err
	}
	if err := binary.Read(br, le, &nCutVals); err != nil {
		return nil, err
	}
	cuts := &Cuts{M: m, MaxBins: int(maxBins),
		Ptr: make([]int32, m+1), Vals: make([]float32, nCutVals)}
	if err := binary.Read(br, le, cuts.Ptr); err != nil {
		return nil, err
	}
	if err := binary.Read(br, le, cuts.Vals); err != nil {
		return nil, err
	}
	labels := make([]float32, n)
	if err := binary.Read(br, le, labels); err != nil {
		return nil, err
	}
	for i, v := range labels {
		if v != v || math.IsInf(float64(v), 0) {
			return nil, fmt.Errorf("dataset cache: non-finite label %v at row %d", v, i)
		}
	}
	bins := make([]uint8, n*m)
	if _, err := io.ReadFull(br, bins); err != nil {
		return nil, err
	}
	ds := &Dataset{Name: name, Labels: labels, Cuts: cuts,
		Binned: &BinnedMatrix{N: n, M: m, Bins: bins}}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("dataset cache: %w", err)
	}
	return ds, nil
}

// SaveCacheFile writes the dataset cache to a file atomically (temp file
// + fsync + rename) with a CRC32 integrity footer.
func SaveCacheFile(path string, ds *Dataset) error {
	return safeio.WriteFile(path, func(w io.Writer) error { return WriteCache(w, ds) })
}

// LoadCacheFile reads a dataset cache from a file, verifying the
// integrity footer when present (footer-less caches from older versions
// still load; their corruption is caught by the format's own checks).
func LoadCacheFile(path string) (*Dataset, error) {
	payload, _, err := safeio.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ReadCache(bytes.NewReader(payload))
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, int32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n int32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n < 0 || n > 1<<20 {
		return "", fmt.Errorf("dataset cache: bad string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
