package dataset

import (
	"harpgbdt/internal/sched"
	"harpgbdt/internal/sketch"
)

// BuildCutsSketched computes per-feature cut points with streaming quantile
// sketches instead of exact sorts. One pass over the data, O(resolution)
// memory per feature: the initialization path for out-of-core or sharded
// data (per-shard sketches merge; see sketch.Sketch.Merge). resolution <= 0
// picks 8x maxBins. A non-nil pool parallelizes over features.
func BuildCutsSketched(d *Dense, maxBins, resolution int, pool *sched.Pool) *Cuts {
	if maxBins <= 1 || maxBins > MaxAllowedBins {
		maxBins = MaxAllowedBins
	}
	if resolution <= 0 {
		resolution = 8 * maxBins
	}
	perFeature := make([][]float32, d.M)
	build := func(f int) {
		s := sketch.New(resolution)
		for i := 0; i < d.N; i++ {
			v := d.Values[i*d.M+f]
			if v == v {
				s.Push(v, 1)
			}
		}
		perFeature[f] = s.Cuts(maxBins)
	}
	if pool != nil && pool.Workers() > 1 {
		pool.ParallelFor(d.M, 1, func(lo, hi, _ int) {
			for f := lo; f < hi; f++ {
				build(f)
			}
		})
	} else {
		for f := 0; f < d.M; f++ {
			build(f)
		}
	}
	c := &Cuts{M: d.M, Ptr: make([]int32, d.M+1), MaxBins: maxBins}
	for f := 0; f < d.M; f++ {
		c.Vals = append(c.Vals, perFeature[f]...)
		c.Ptr[f+1] = int32(len(c.Vals))
	}
	return c
}
