package dataset

import (
	"harpgbdt/internal/sched"
)

// BuildCutsParallel is BuildCuts with the per-feature quantile computations
// and the binning pass spread over a worker pool. The paper lists
// optimizing histogram initialization (a one-time cost excluded from its
// training-time metric but significant in practice) as future work; this
// implements it: cut construction is embarrassingly parallel over features
// and binning over rows.
func BuildCutsParallel(d *Dense, maxBins int, pool *sched.Pool) *Cuts {
	if pool == nil || pool.Workers() == 1 {
		return BuildCuts(d, maxBins)
	}
	if maxBins <= 1 || maxBins > MaxAllowedBins {
		maxBins = MaxAllowedBins
	}
	perFeature := make([][]float32, d.M)
	pool.ParallelFor(d.M, 1, func(lo, hi, _ int) {
		for f := lo; f < hi; f++ {
			col := make([]float32, 0, d.N)
			for i := 0; i < d.N; i++ {
				v := d.Values[i*d.M+f]
				if v == v {
					col = append(col, v)
				}
			}
			perFeature[f] = quantileCuts(col, maxBins)
		}
	})
	c := &Cuts{M: d.M, Ptr: make([]int32, d.M+1), MaxBins: maxBins}
	for f := 0; f < d.M; f++ {
		c.Vals = append(c.Vals, perFeature[f]...)
		c.Ptr[f+1] = int32(len(c.Vals))
	}
	return c
}

// BinDenseParallel is BinDense with the row loop spread over a worker pool.
func BinDenseParallel(d *Dense, c *Cuts, pool *sched.Pool) *BinnedMatrix {
	if pool == nil || pool.Workers() == 1 {
		return BinDense(d, c)
	}
	b := &BinnedMatrix{N: d.N, M: d.M, Bins: make([]uint8, d.N*d.M)}
	pool.ParallelFor(d.N, 0, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			row := d.Row(i)
			out := b.Row(i)
			for f, v := range row {
				out[f] = c.BinValue(f, v)
			}
		}
	})
	return b
}

// FromDenseParallel builds a Dataset using the parallel initialization
// path.
func FromDenseParallel(name string, d *Dense, labels []float32, maxBins int, pool *sched.Pool) (*Dataset, error) {
	if len(labels) != d.N {
		return nil, errLabels(len(labels), d.N)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	cuts := BuildCutsParallel(d, maxBins, pool)
	return &Dataset{Name: name, Labels: labels, Binned: BinDenseParallel(d, cuts, pool), Cuts: cuts}, nil
}
