package dataset

import (
	"math"
	"strings"
	"testing"
)

func TestDenseBasics(t *testing.T) {
	d := NewDense(3, 2)
	d.Set(1, 1, 4.5)
	if d.At(1, 1) != 4.5 {
		t.Fatal("set/get mismatch")
	}
	d.SetMissing(0, 0)
	if !d.IsMissing(0, 0) {
		t.Fatal("missing not detected")
	}
	if d.IsMissing(1, 1) {
		t.Fatal("present value reported missing")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Row(2)) != 2 {
		t.Fatal("row length")
	}
}

func TestDenseValidateCatchesBadLength(t *testing.T) {
	d := &Dense{N: 2, M: 2, Values: make([]float32, 3)}
	if err := d.Validate(); err == nil {
		t.Fatal("bad length passed validation")
	}
}

func TestCSRBuilderAndValidate(t *testing.T) {
	b := NewCSRBuilder(4)
	if err := b.AddRow([]int32{0, 2}, []float32{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRow(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRow([]int32{3}, []float32{5}); err != nil {
		t.Fatal(err)
	}
	c := b.Build()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 3 || c.N != 3 || c.M != 4 {
		t.Fatalf("dims nnz=%d n=%d m=%d", c.NNZ(), c.N, c.M)
	}
	cols, vals := c.Row(0)
	if len(cols) != 2 || cols[1] != 2 || vals[1] != 2 {
		t.Fatalf("row 0: %v %v", cols, vals)
	}
	if cols, _ := c.Row(1); len(cols) != 0 {
		t.Fatal("empty row not empty")
	}
}

func TestCSRBuilderRejectsBadRows(t *testing.T) {
	b := NewCSRBuilder(3)
	if err := b.AddRow([]int32{1, 1}, []float32{1, 2}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if err := b.AddRow([]int32{2, 1}, []float32{1, 2}); err == nil {
		t.Fatal("decreasing columns accepted")
	}
	if err := b.AddRow([]int32{5}, []float32{1}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if err := b.AddRow([]int32{1}, []float32{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestCSRToDense(t *testing.T) {
	b := NewCSRBuilder(3)
	_ = b.AddRow([]int32{1}, []float32{7})
	_ = b.AddRow([]int32{0, 2}, []float32{1, 2})
	d := b.Build().ToDense()
	if d.At(0, 1) != 7 || d.At(1, 0) != 1 || d.At(1, 2) != 2 {
		t.Fatal("values wrong")
	}
	if !d.IsMissing(0, 0) || !d.IsMissing(0, 2) || !d.IsMissing(1, 1) {
		t.Fatal("absent entries should be missing")
	}
}

func TestBinDenseAndValidate(t *testing.T) {
	d := NewDense(10, 3)
	for i := 0; i < 10; i++ {
		d.Set(i, 0, float32(i))
		d.Set(i, 1, float32(i%2))
		if i%3 == 0 {
			d.SetMissing(i, 2)
		} else {
			d.Set(i, 2, float32(i))
		}
	}
	c := BuildCuts(d, 8)
	bm := BinDense(d, c)
	if err := bm.Validate(c); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if (bm.At(i, 2) == MissingBin) != (i%3 == 0) {
			t.Fatalf("row %d missing flag wrong", i)
		}
	}
	// Binary feature maps to 2 bins.
	if c.NumBins(1) != 2 {
		t.Fatalf("binary feature bins = %d", c.NumBins(1))
	}
}

func TestBinCSRMissingEverywhereAbsent(t *testing.T) {
	b := NewCSRBuilder(2)
	_ = b.AddRow([]int32{0}, []float32{1})
	_ = b.AddRow([]int32{1}, []float32{2})
	csr := b.Build()
	c := BuildCutsCSR(csr, 8)
	bm := BinCSR(csr, c)
	if bm.At(0, 1) != MissingBin || bm.At(1, 0) != MissingBin {
		t.Fatal("absent entries must bin as missing")
	}
	if bm.At(0, 0) == MissingBin || bm.At(1, 1) == MissingBin {
		t.Fatal("present entries binned as missing")
	}
}

func TestColumnBlocksRoundTrip(t *testing.T) {
	d := NewDense(7, 5)
	for i := 0; i < 7; i++ {
		for f := 0; f < 5; f++ {
			d.Set(i, f, float32(i*5+f))
		}
	}
	c := BuildCuts(d, 255)
	bm := BinDense(d, c)
	for _, width := range []int{1, 2, 3, 5, 100} {
		cb := NewColumnBlocks(bm, width)
		for b := 0; b < cb.NumBlocks(); b++ {
			lo, hi, _ := cb.Block(b)
			for i := 0; i < 7; i++ {
				row := cb.RowSlice(b, i)
				for j := 0; j < hi-lo; j++ {
					if row[j] != bm.At(i, lo+j) {
						t.Fatalf("width=%d block=%d row=%d feat=%d mismatch", width, b, i, lo+j)
					}
				}
			}
		}
		// Blocks must tile [0, M).
		if cb.Starts[0] != 0 || cb.Starts[cb.NumBlocks()] != 5 {
			t.Fatalf("width=%d: blocks do not tile: %v", width, cb.Starts)
		}
	}
}

func TestFromDenseAndStats(t *testing.T) {
	d := NewDense(100, 4)
	for i := 0; i < 100; i++ {
		d.Set(i, 0, float32(i))   // many bins
		d.Set(i, 1, float32(i%2)) // 2 bins
		d.Set(i, 2, 1.0)          // constant: 1 bin
		if i%4 == 0 {
			d.SetMissing(i, 3)
		} else {
			d.Set(i, 3, float32(i%10))
		}
	}
	labels := make([]float32, 100)
	ds, err := FromDense("test", d, labels, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(ds)
	if st.N != 100 || st.M != 4 {
		t.Fatalf("stats dims %+v", st)
	}
	wantS := (100.0*3 + 75) / 400.0
	if math.Abs(st.S-wantS) > 1e-9 {
		t.Fatalf("S = %f, want %f", st.S, wantS)
	}
	if st.BinsPerFeature[1] != 2 || st.BinsPerFeature[2] != 1 {
		t.Fatalf("bins per feature %v", st.BinsPerFeature)
	}
	if st.CV <= 0 {
		t.Fatalf("CV should be positive for uneven features: %f", st.CV)
	}
	if !strings.Contains(st.String(), "N=100") {
		t.Fatalf("stats string: %s", st.String())
	}
}

func TestStatsEvenFeaturesLowCV(t *testing.T) {
	d := NewDense(200, 3)
	for i := 0; i < 200; i++ {
		for f := 0; f < 3; f++ {
			d.Set(i, f, float32((i*7+f*3)%50))
		}
	}
	labels := make([]float32, 200)
	ds, err := FromDense("even", d, labels, 64)
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(ds)
	if st.CV > 0.05 {
		t.Fatalf("CV for identical distributions should be ~0: %f", st.CV)
	}
	if st.S != 1 {
		t.Fatalf("dense dataset S = %f", st.S)
	}
}

func TestFromDenseLabelMismatch(t *testing.T) {
	d := NewDense(5, 1)
	if _, err := FromDense("x", d, make([]float32, 4), 8); err == nil {
		t.Fatal("label count mismatch accepted")
	}
}

func TestDatasetValidateCatchesLabelMismatch(t *testing.T) {
	d := NewDense(3, 1)
	ds, err := FromDense("x", d, make([]float32, 3), 8)
	if err != nil {
		t.Fatal(err)
	}
	ds.Labels = ds.Labels[:2]
	if err := ds.Validate(); err == nil {
		t.Fatal("truncated labels passed validation")
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	d := NewDense(0, 0)
	ds := &Dataset{Labels: nil, Binned: BinDense(d, BuildCuts(d, 8)), Cuts: BuildCuts(d, 8)}
	st := ComputeStats(ds)
	if st.S != 0 || st.CV != 0 {
		t.Fatalf("empty stats %+v", st)
	}
}
