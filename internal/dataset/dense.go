// Package dataset provides the input-side substrate for GBDT training:
// dense and sparse (CSR) value matrices, quantile-sketch bin cuts
// ("histogram initialization"), the 1-byte binned matrix and its
// feature-block panel layout, dataset shape statistics (sparseness S and
// bin-dispersion CV from Table III of the paper), and loaders for libsvm and
// CSV formats plus a fast binary cache.
package dataset

import (
	"fmt"
	"math"
)

// Dense is a row-major N x M matrix of float32 feature values. Missing
// values are represented as NaN.
type Dense struct {
	N, M   int
	Values []float32
}

// NewDense allocates an N x M dense matrix with all values zero.
func NewDense(n, m int) *Dense {
	return &Dense{N: n, M: m, Values: make([]float32, n*m)}
}

// At returns the value at row i, feature f.
func (d *Dense) At(i, f int) float32 { return d.Values[i*d.M+f] }

// Set stores v at row i, feature f.
func (d *Dense) Set(i, f int, v float32) { d.Values[i*d.M+f] = v }

// SetMissing marks row i, feature f as missing.
func (d *Dense) SetMissing(i, f int) { d.Values[i*d.M+f] = float32(math.NaN()) }

// Row returns the backing slice of row i (length M). The slice aliases the
// matrix; callers must not grow it.
func (d *Dense) Row(i int) []float32 { return d.Values[i*d.M : (i+1)*d.M] }

// IsMissing reports whether the value at row i, feature f is missing.
func (d *Dense) IsMissing(i, f int) bool {
	v := d.Values[i*d.M+f]
	return v != v // NaN check without math import in hot path
}

// Validate checks structural consistency.
func (d *Dense) Validate() error {
	if d.N < 0 || d.M < 0 {
		return fmt.Errorf("dataset: negative dimensions %dx%d", d.N, d.M)
	}
	if len(d.Values) != d.N*d.M {
		return fmt.Errorf("dataset: values length %d != %d*%d", len(d.Values), d.N, d.M)
	}
	return nil
}

// CSR is a compressed sparse row matrix. Entries absent from a row are
// treated as missing (the GBDT engines send them in the split's default
// direction, matching XGBoost's sparsity-aware handling).
type CSR struct {
	N, M   int
	RowPtr []int64 // length N+1
	Cols   []int32
	Vals   []float32
}

// NewCSRBuilder returns a builder that assembles a CSR matrix row by row.
func NewCSRBuilder(m int) *CSRBuilder {
	return &CSRBuilder{m: m, rowPtr: []int64{0}}
}

// CSRBuilder accumulates rows for a CSR matrix.
type CSRBuilder struct {
	m      int
	rowPtr []int64
	cols   []int32
	vals   []float32
}

// AddRow appends a row given parallel column/value slices. Columns must be
// strictly increasing and within range.
func (b *CSRBuilder) AddRow(cols []int32, vals []float32) error {
	if len(cols) != len(vals) {
		return fmt.Errorf("dataset: cols/vals length mismatch %d != %d", len(cols), len(vals))
	}
	prev := int32(-1)
	for _, c := range cols {
		if c <= prev {
			return fmt.Errorf("dataset: columns not strictly increasing at %d", c)
		}
		if int(c) >= b.m {
			return fmt.Errorf("dataset: column %d out of range (m=%d)", c, b.m)
		}
		prev = c
	}
	b.cols = append(b.cols, cols...)
	b.vals = append(b.vals, vals...)
	b.rowPtr = append(b.rowPtr, int64(len(b.cols)))
	return nil
}

// Build finalizes the CSR matrix.
func (b *CSRBuilder) Build() *CSR {
	return &CSR{
		N:      len(b.rowPtr) - 1,
		M:      b.m,
		RowPtr: b.rowPtr,
		Cols:   b.cols,
		Vals:   b.vals,
	}
}

// NNZ returns the number of stored entries.
func (c *CSR) NNZ() int { return len(c.Cols) }

// Row returns the column indices and values of row i. The slices alias the
// matrix.
func (c *CSR) Row(i int) ([]int32, []float32) {
	lo, hi := c.RowPtr[i], c.RowPtr[i+1]
	return c.Cols[lo:hi], c.Vals[lo:hi]
}

// ToDense materializes the CSR matrix as a dense matrix with NaN for absent
// entries.
func (c *CSR) ToDense() *Dense {
	d := NewDense(c.N, c.M)
	nan := float32(math.NaN())
	for i := range d.Values {
		d.Values[i] = nan
	}
	for i := 0; i < c.N; i++ {
		cols, vals := c.Row(i)
		row := d.Row(i)
		for k, col := range cols {
			row[col] = vals[k]
		}
	}
	return d
}

// Validate checks structural consistency.
func (c *CSR) Validate() error {
	if len(c.RowPtr) != c.N+1 {
		return fmt.Errorf("dataset: rowptr length %d != N+1=%d", len(c.RowPtr), c.N+1)
	}
	if len(c.Cols) != len(c.Vals) {
		return fmt.Errorf("dataset: cols/vals length mismatch")
	}
	if c.RowPtr[0] != 0 || c.RowPtr[c.N] != int64(len(c.Cols)) {
		return fmt.Errorf("dataset: rowptr endpoints invalid")
	}
	for i := 0; i < c.N; i++ {
		if c.RowPtr[i] > c.RowPtr[i+1] {
			return fmt.Errorf("dataset: rowptr not monotone at row %d", i)
		}
	}
	return nil
}
