package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// libsvmSeeds exercise the parser's branches: comments, blank lines,
// inferred vs. fixed feature counts, out-of-order columns, negative and
// exponent-formatted values, and the error paths (bad pairs, non-finite
// values, bad labels).
var libsvmSeeds = []string{
	"1 0:1.5 3:2\n0 1:0.25\n",
	"# comment\n\n-1 0:-3e2 1:0.001\n",
	"0.5 7:1\n",
	"1 2:nan\n",
	"1 0:1 0:2\n",
	"bad 0:1\n",
	"1 :5\n",
	"1 0:1 1:inf\n",
	"2 1:1e40\n",
	"",
}

// csvSeeds cover headerless numeric CSV with missing fields, explicit
// NaN, ragged rows and bad labels.
var csvSeeds = []string{
	"1,2.5,3\n0,,1\n",
	"0.5,1e-3,-2\n",
	"1,nan,2\n",
	"1,2\n0,1,2\n",
	"x,1,2\n",
	"1,inf\n",
	"\n\n1,0\n",
	"3,\n",
	"",
}

// FuzzReadLibSVM checks that arbitrary input either fails cleanly or
// yields a structurally valid CSR whose contents honor the parser's
// documented guarantees (finite values, in-range columns, one label per
// row) and that survive a write/re-read round trip.
func FuzzReadLibSVM(f *testing.F) {
	for _, s := range libsvmSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		csr, labels, err := ReadLibSVM(strings.NewReader(input), 0)
		if err != nil {
			return
		}
		if err := csr.Validate(); err != nil {
			t.Fatalf("accepted CSR fails Validate: %v", err)
		}
		if len(labels) != csr.N {
			t.Fatalf("%d labels for %d rows", len(labels), csr.N)
		}
		for _, y := range labels {
			if y != y || math.IsInf(float64(y), 0) {
				t.Fatalf("non-finite label %v accepted", y)
			}
		}
		for i := 0; i < csr.N; i++ {
			cols, vals := csr.Row(i)
			for j, c := range cols {
				if int(c) < 0 || int(c) >= csr.M {
					t.Fatalf("row %d: column %d out of range [0,%d)", i, c, csr.M)
				}
				v := vals[j]
				if v != v || math.IsInf(float64(v), 0) {
					t.Fatalf("row %d: non-finite value %v accepted", i, v)
				}
			}
		}
		// Round trip: what we write back must parse to the same shape.
		var buf bytes.Buffer
		if err := WriteLibSVM(&buf, csr.ToDense(), labels); err != nil {
			t.Fatalf("WriteLibSVM: %v", err)
		}
		csr2, labels2, err := ReadLibSVM(&buf, csr.M)
		if err != nil {
			t.Fatalf("re-read of written output failed: %v", err)
		}
		if csr2.N != csr.N || len(labels2) != len(labels) || csr2.NNZ() != csr.NNZ() {
			t.Fatalf("round trip changed shape: %dx%d/%d -> %dx%d/%d",
				csr.N, csr.M, csr.NNZ(), csr2.N, csr2.M, csr2.NNZ())
		}
	})
}

// FuzzReadCSV checks that arbitrary input either fails cleanly or yields
// a valid Dense matrix with one finite label per row and only
// finite-or-missing feature values.
func FuzzReadCSV(f *testing.F) {
	for _, s := range csvSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		d, labels, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("accepted Dense fails Validate: %v", err)
		}
		if len(labels) != d.N {
			t.Fatalf("%d labels for %d rows", len(labels), d.N)
		}
		for _, y := range labels {
			if y != y || math.IsInf(float64(y), 0) {
				t.Fatalf("non-finite label %v accepted", y)
			}
		}
		for _, v := range d.Values {
			if math.IsInf(float64(v), 0) {
				t.Fatalf("infinite feature value %v accepted (only NaN marks missing)", v)
			}
		}
	})
}

// TestFuzzSeedCorpus replays the seed corpus through both fuzz bodies in
// a plain test so `go test` (without -fuzz) still exercises them.
func TestFuzzSeedCorpus(t *testing.T) {
	for _, s := range libsvmSeeds {
		if csr, labels, err := ReadLibSVM(strings.NewReader(s), 0); err == nil {
			if err := csr.Validate(); err != nil {
				t.Errorf("seed %q: %v", s, err)
			}
			if len(labels) != csr.N {
				t.Errorf("seed %q: %d labels for %d rows", s, len(labels), csr.N)
			}
		}
	}
	for _, s := range csvSeeds {
		if d, labels, err := ReadCSV(strings.NewReader(s)); err == nil {
			if err := d.Validate(); err != nil {
				t.Errorf("seed %q: %v", s, err)
			}
			if len(labels) != d.N {
				t.Errorf("seed %q: %d labels for %d rows", s, len(labels), d.N)
			}
		}
	}
}
