package dataset

import "fmt"

// Subset extracts the given rows (in order, duplicates allowed) into a new
// Dataset sharing the original's cuts. Binned values are copied, so the
// subset is independent of the source's lifetime. Used by cross-validation
// and bagging.
func Subset(ds *Dataset, rows []int32) (*Dataset, error) {
	n, m := len(rows), ds.NumFeatures()
	bins := make([]uint8, n*m)
	labels := make([]float32, n)
	src := ds.Binned
	for i, r := range rows {
		if r < 0 || int(r) >= ds.NumRows() {
			return nil, fmt.Errorf("dataset: subset row %d out of range [0, %d)", r, ds.NumRows())
		}
		copy(bins[i*m:(i+1)*m], src.Bins[int(r)*m:(int(r)+1)*m])
		labels[i] = ds.Labels[r]
	}
	return &Dataset{
		Name:   ds.Name + "-subset",
		Labels: labels,
		Binned: &BinnedMatrix{N: n, M: m, Bins: bins},
		Cuts:   ds.Cuts,
	}, nil
}

// Split partitions the dataset's row indices into k contiguous folds of
// near-equal size. Use with a prior shuffle for random folds.
func Split(n, k int) [][]int32 {
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	folds := make([][]int32, k)
	for i := 0; i < n; i++ {
		f := i * k / n
		folds[f] = append(folds[f], int32(i))
	}
	return folds
}
