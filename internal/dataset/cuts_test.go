package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func denseFrom(rows [][]float32) *Dense {
	n := len(rows)
	m := 0
	if n > 0 {
		m = len(rows[0])
	}
	d := NewDense(n, m)
	for i, r := range rows {
		copy(d.Row(i), r)
	}
	return d
}

func TestBuildCutsSimple(t *testing.T) {
	d := denseFrom([][]float32{{1, 10}, {2, 10}, {3, 10}, {4, 10}})
	c := BuildCuts(d, 16)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.NumBins(0); got != 4 {
		t.Fatalf("feature 0 bins = %d, want 4", got)
	}
	if got := c.NumBins(1); got != 1 {
		t.Fatalf("constant feature bins = %d, want 1", got)
	}
}

func TestBinValueMonotone(t *testing.T) {
	d := NewDense(100, 1)
	for i := 0; i < 100; i++ {
		d.Set(i, 0, float32(i))
	}
	c := BuildCuts(d, 10)
	prev := uint8(0)
	for i := 0; i < 100; i++ {
		b := c.BinValue(0, float32(i))
		if b < prev {
			t.Fatalf("binning not monotone at %d: %d < %d", i, b, prev)
		}
		prev = b
	}
}

func TestBinValueRoundTripsTrainingValues(t *testing.T) {
	// Every training value must land in a bin whose upper bound is >= it,
	// and the previous bin's upper bound must be < it.
	d := NewDense(64, 2)
	for i := 0; i < 64; i++ {
		d.Set(i, 0, float32(i%17)*0.5)
		d.Set(i, 1, float32(i*i%31))
	}
	c := BuildCuts(d, 8)
	for i := 0; i < 64; i++ {
		for f := 0; f < 2; f++ {
			v := d.At(i, f)
			b := c.BinValue(f, v)
			if b == MissingBin {
				t.Fatalf("non-missing value binned as missing")
			}
			if ub := c.UpperBound(f, b); v > ub {
				t.Fatalf("value %v above its bin %d upper bound %v", v, b, ub)
			}
			if b > 0 {
				if lb := c.UpperBound(f, b-1); v <= lb {
					t.Fatalf("value %v should be in an earlier bin (bin %d lower bound %v)", v, b, lb)
				}
			}
		}
	}
}

func TestBinValueMissing(t *testing.T) {
	d := denseFrom([][]float32{{1}, {2}})
	c := BuildCuts(d, 4)
	if b := c.BinValue(0, float32(math.NaN())); b != MissingBin {
		t.Fatalf("NaN binned to %d, want MissingBin", b)
	}
}

func TestBinValueClampsAboveRange(t *testing.T) {
	d := denseFrom([][]float32{{1}, {2}, {3}})
	c := BuildCuts(d, 4)
	hi := c.BinValue(0, 1e9)
	if int(hi) != c.NumBins(0)-1 {
		t.Fatalf("huge value binned to %d, want last bin %d", hi, c.NumBins(0)-1)
	}
	lo := c.BinValue(0, -1e9)
	if lo != 0 {
		t.Fatalf("tiny value binned to %d, want 0", lo)
	}
}

func TestBuildCutsRespectsMaxBins(t *testing.T) {
	d := NewDense(1000, 1)
	for i := 0; i < 1000; i++ {
		d.Set(i, 0, float32(i))
	}
	for _, mb := range []int{2, 7, 16, 255} {
		c := BuildCuts(d, mb)
		if got := c.NumBins(0); got > mb {
			t.Fatalf("maxBins=%d: got %d bins", mb, got)
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBuildCutsIgnoresMissing(t *testing.T) {
	d := NewDense(4, 1)
	d.Set(0, 0, 1)
	d.SetMissing(1, 0)
	d.Set(2, 0, 2)
	d.SetMissing(3, 0)
	c := BuildCuts(d, 8)
	if got := c.NumBins(0); got != 2 {
		t.Fatalf("bins = %d, want 2", got)
	}
}

func TestBuildCutsAllMissingFeature(t *testing.T) {
	d := NewDense(3, 2)
	for i := 0; i < 3; i++ {
		d.SetMissing(i, 0)
		d.Set(i, 1, float32(i))
	}
	c := BuildCuts(d, 8)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// All-missing feature has no cuts; non-missing values clamp to bin 0.
	if b := c.BinValue(0, 5); b != 0 {
		t.Fatalf("bin on cutless feature = %d, want 0", b)
	}
}

func TestQuantileCutsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, mbRaw uint8) bool {
		n := int(nRaw%500) + 1
		maxBins := int(mbRaw%100) + 2
		vals := make([]float32, n)
		s := uint64(seed)
		for i := range vals {
			s = s*6364136223846793005 + 1442695040888963407
			vals[i] = float32(int16(s>>48)) / 64
		}
		cuts := quantileCuts(append([]float32(nil), vals...), maxBins)
		if len(cuts) > maxBins {
			return false
		}
		// Strictly increasing.
		for k := 1; k < len(cuts); k++ {
			if !(cuts[k-1] < cuts[k]) {
				return false
			}
		}
		// Last cut covers the max value.
		maxV := vals[0]
		for _, v := range vals {
			if v > maxV {
				maxV = v
			}
		}
		return len(cuts) > 0 && cuts[len(cuts)-1] == maxV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileCutsEmpty(t *testing.T) {
	if got := quantileCuts(nil, 10); got != nil {
		t.Fatalf("empty input should yield nil cuts, got %v", got)
	}
}

func TestBuildCutsCSRMatchesDense(t *testing.T) {
	// A fully dense CSR must produce the same cuts as the equivalent dense
	// matrix.
	b := NewCSRBuilder(2)
	rows := [][]float32{{1, 5}, {2, 6}, {3, 7}, {4, 8}}
	for _, r := range rows {
		if err := b.AddRow([]int32{0, 1}, r); err != nil {
			t.Fatal(err)
		}
	}
	csr := b.Build()
	cDense := BuildCuts(denseFrom(rows), 16)
	cCSR := BuildCutsCSR(csr, 16)
	for f := 0; f < 2; f++ {
		a, b := cDense.FeatureCuts(f), cCSR.FeatureCuts(f)
		if len(a) != len(b) {
			t.Fatalf("feature %d: %v vs %v", f, a, b)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("feature %d cut %d: %v vs %v", f, k, a[k], b[k])
			}
		}
	}
}

func TestCutsValidateCatchesCorruption(t *testing.T) {
	d := denseFrom([][]float32{{1, 1}, {2, 2}, {3, 3}})
	c := BuildCuts(d, 8)
	c.Vals[1] = c.Vals[0] // break strict monotonicity
	if err := c.Validate(); err == nil {
		t.Fatal("corrupted cuts passed validation")
	}
}
