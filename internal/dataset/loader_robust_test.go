package dataset

// Table-driven error-path tests for the text loaders, plus corruption
// detection on the binary cache: malformed input must fail with a clear
// error, never a panic or a silently wrong dataset.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadLibSVMRejectsMalformedInput(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"empty file", "", "no data rows"},
		{"only comments", "# header\n\n# more\n", "no data rows"},
		{"bad label", "x 0:1\n", "bad label"},
		{"nan label", "nan 0:1\n", "non-finite label"},
		{"inf label", "+inf 0:1\n", "non-finite label"},
		{"overflow label", "1e300 0:1\n", "bad label"},
		{"missing colon", "1 0\n", "bad pair"},
		{"empty index", "1 :5\n", "bad pair"},
		{"bad index", "1 a:5\n", "bad index"},
		{"negative index", "1 -2:5\n", "bad index"},
		{"bad value", "1 0:x\n", "bad value"},
		{"nan value", "1 0:nan\n", "non-finite value"},
		{"inf value", "1 0:inf\n", "non-finite value"},
		{"unsorted columns", "1 3:1 1:2\n", "strictly increasing"},
		{"duplicate column", "1 2:1 2:2\n", "strictly increasing"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := ReadLibSVM(strings.NewReader(c.in), 0)
			if err == nil {
				t.Fatalf("accepted %q", c.in)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestReadLibSVMRejectsColumnBeyondFeatureCount(t *testing.T) {
	if _, _, err := ReadLibSVM(strings.NewReader("1 7:1\n"), 4); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("column 7 with 4 features: %v", err)
	}
}

func TestReadCSVRejectsMalformedInput(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"empty file", "", "no data rows"},
		{"only blank lines", "\n\n  \n", "no data rows"},
		{"bad label", "a,1\n", "bad label"},
		{"nan label", "nan,1\n", "non-finite label"},
		{"inf label", "-inf,1\n", "non-finite label"},
		{"overflow label", "4e40,1\n", "bad label"},
		{"ragged row", "1,2\n1,2,3\n", "want"},
		{"bad value", "1,x\n", "invalid syntax"},
		{"inf value", "1,inf\n", "infinite value"},
		{"overflow value", "1,1e39\n", "out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := ReadCSV(strings.NewReader(c.in))
			if err == nil {
				t.Fatalf("accepted %q", c.in)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestReadCSVExplicitNaNIsMissing(t *testing.T) {
	d, labels, err := ReadCSV(strings.NewReader("1,nan,2\n0,3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 2 {
		t.Fatalf("%d labels", len(labels))
	}
	if v := d.Row(0)[0]; v == v {
		t.Fatalf("explicit nan should be missing, got %v", v)
	}
}

func TestCacheFileCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.bin")
	d := NewDense(50, 3)
	labels := make([]float32, 50)
	for i := 0; i < 50; i++ {
		for j := 0; j < 3; j++ {
			d.Row(i)[j] = float32(i*3+j) / 7
		}
		labels[i] = float32(i % 2)
	}
	ds, err := FromDense("t", d, labels, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCacheFile(path, ds); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCacheFile(path); err != nil {
		t.Fatalf("clean cache rejected: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCacheFile(path); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("bit flip not detected: %v", err)
	}
}

func TestCacheRejectsNonFiniteLabels(t *testing.T) {
	d := NewDense(10, 2)
	labels := make([]float32, 10)
	for i := range labels {
		d.Row(i)[0] = float32(i)
		d.Row(i)[1] = float32(i) / 2
		labels[i] = float32(i % 2)
	}
	ds, err := FromDense("t", d, labels, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCache(&buf, ds); err != nil {
		t.Fatal(err)
	}
	// Tamper with the serialized labels (no file footer in play here: the
	// format-level check must catch it).
	ds.Labels[3] = nanF32()
	var bad bytes.Buffer
	if err := WriteCache(&bad, ds); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCache(&bad); err == nil || !strings.Contains(err.Error(), "non-finite label") {
		t.Fatalf("nan label not rejected: %v", err)
	}
}
