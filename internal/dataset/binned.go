package dataset

import "fmt"

// BinnedMatrix stores the input after histogram initialization: a row-major
// N x M matrix of 1-byte bin ids (MissingBin for missing values). This is
// the "Input" structure of the paper's Figure 5.
type BinnedMatrix struct {
	N, M int
	Bins []uint8
}

// At returns the bin id at row i, feature f.
func (b *BinnedMatrix) At(i, f int) uint8 { return b.Bins[i*b.M+f] }

// Row returns the bin ids of row i (aliases internal storage).
func (b *BinnedMatrix) Row(i int) []uint8 { return b.Bins[i*b.M : (i+1)*b.M] }

// Validate checks structural consistency against the cuts.
func (b *BinnedMatrix) Validate(c *Cuts) error {
	if len(b.Bins) != b.N*b.M {
		return fmt.Errorf("dataset: binned length %d != %d*%d", len(b.Bins), b.N, b.M)
	}
	if c == nil {
		return nil
	}
	if c.M != b.M {
		return fmt.Errorf("dataset: cuts M=%d != binned M=%d", c.M, b.M)
	}
	for f := 0; f < b.M; f++ {
		nb := c.NumBins(f)
		for i := 0; i < b.N; i++ {
			v := b.At(i, f)
			if v != MissingBin && int(v) >= nb {
				return fmt.Errorf("dataset: bin %d out of range (feature %d has %d bins)", v, f, nb)
			}
		}
	}
	return nil
}

// BinDense quantizes a dense matrix with the given cuts.
func BinDense(d *Dense, c *Cuts) *BinnedMatrix {
	b := &BinnedMatrix{N: d.N, M: d.M, Bins: make([]uint8, d.N*d.M)}
	for i := 0; i < d.N; i++ {
		row := d.Row(i)
		out := b.Row(i)
		for f, v := range row {
			out[f] = c.BinValue(f, v)
		}
	}
	return b
}

// BinCSR quantizes a CSR matrix with the given cuts; absent entries become
// MissingBin.
func BinCSR(s *CSR, c *Cuts) *BinnedMatrix {
	b := &BinnedMatrix{N: s.N, M: s.M, Bins: make([]uint8, s.N*s.M)}
	for i := range b.Bins {
		b.Bins[i] = MissingBin
	}
	for i := 0; i < s.N; i++ {
		cols, vals := s.Row(i)
		out := b.Row(i)
		for k, col := range cols {
			out[col] = c.BinValue(int(col), vals[k])
		}
	}
	return b
}

// ColumnBlocks is the feature-block panel layout of a binned matrix: the M
// features are split into contiguous blocks of width <= blockWidth, and each
// block is stored as its own row-major N x width panel. A (row block x
// feature block) tile is then a contiguous-in-rows strip of a small panel,
// which is what the paper's block-wise BuildHist kernels scan.
type ColumnBlocks struct {
	N, M       int
	BlockWidth int
	Starts     []int // feature index where each block begins; len = NumBlocks+1
	Panels     [][]uint8
}

// NumBlocks returns the number of feature blocks.
func (cb *ColumnBlocks) NumBlocks() int { return len(cb.Panels) }

// Block returns the feature range [lo, hi) and the panel of block b.
func (cb *ColumnBlocks) Block(b int) (lo, hi int, panel []uint8) {
	return cb.Starts[b], cb.Starts[b+1], cb.Panels[b]
}

// Width returns the number of features in block b.
func (cb *ColumnBlocks) Width(b int) int { return cb.Starts[b+1] - cb.Starts[b] }

// RowSlice returns the bin ids of row i within block b (width bytes,
// contiguous).
func (cb *ColumnBlocks) RowSlice(b, i int) []uint8 {
	w := cb.Width(b)
	return cb.Panels[b][i*w : (i+1)*w]
}

// NewColumnBlocks repacks a binned matrix into feature-block panels of the
// given width. width <= 0 or >= M produces a single block (plain row-major
// copy).
func NewColumnBlocks(bm *BinnedMatrix, width int) *ColumnBlocks {
	if width <= 0 || width > bm.M {
		width = bm.M
	}
	if width < 1 {
		width = 1
	}
	nb := (bm.M + width - 1) / width
	if nb == 0 { // zero-feature matrix: keep one empty block for uniformity
		nb = 1
	}
	cb := &ColumnBlocks{N: bm.N, M: bm.M, BlockWidth: width,
		Starts: make([]int, nb+1), Panels: make([][]uint8, nb)}
	for b := 0; b < nb; b++ {
		lo := b * width
		hi := lo + width
		if hi > bm.M {
			hi = bm.M
		}
		cb.Starts[b] = lo
		cb.Starts[b+1] = hi
		w := hi - lo
		panel := make([]uint8, bm.N*w)
		for i := 0; i < bm.N; i++ {
			copy(panel[i*w:(i+1)*w], bm.Bins[i*bm.M+lo:i*bm.M+hi])
		}
		cb.Panels[b] = panel
	}
	return cb
}
