package dataset

import (
	"testing"

	"harpgbdt/internal/sched"
)

func randomDense(n, m int, seed uint64) *Dense {
	d := NewDense(n, m)
	s := seed
	for i := 0; i < n; i++ {
		for f := 0; f < m; f++ {
			s = s*6364136223846793005 + 1442695040888963407
			if s>>60 == 0 {
				d.SetMissing(i, f)
			} else {
				d.Set(i, f, float32(int16(s>>44))/128)
			}
		}
	}
	return d
}

func TestBuildCutsParallelMatchesSerial(t *testing.T) {
	d := randomDense(3000, 7, 5)
	serial := BuildCuts(d, 64)
	for _, workers := range []int{2, 4, 8} {
		par := BuildCutsParallel(d, 64, sched.NewPool(workers))
		if err := par.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(par.Vals) != len(serial.Vals) {
			t.Fatalf("workers=%d: %d cuts vs %d serial", workers, len(par.Vals), len(serial.Vals))
		}
		for k := range serial.Vals {
			if par.Vals[k] != serial.Vals[k] {
				t.Fatalf("workers=%d: cut %d differs", workers, k)
			}
		}
		for f := 0; f <= 7; f++ {
			if par.Ptr[f] != serial.Ptr[f] {
				t.Fatalf("workers=%d: ptr %d differs", workers, f)
			}
		}
	}
}

func TestBuildCutsParallelNilPoolFallsBack(t *testing.T) {
	d := randomDense(100, 3, 7)
	a := BuildCutsParallel(d, 16, nil)
	b := BuildCuts(d, 16)
	if len(a.Vals) != len(b.Vals) {
		t.Fatal("nil-pool fallback differs")
	}
}

func TestBinDenseParallelMatchesSerial(t *testing.T) {
	d := randomDense(2000, 5, 9)
	c := BuildCuts(d, 32)
	serial := BinDense(d, c)
	par := BinDenseParallel(d, c, sched.NewPool(4))
	for i := range serial.Bins {
		if serial.Bins[i] != par.Bins[i] {
			t.Fatalf("bin %d differs", i)
		}
	}
}

func TestBinDenseParallelVirtualPool(t *testing.T) {
	d := randomDense(500, 4, 11)
	c := BuildCuts(d, 16)
	serial := BinDense(d, c)
	par := BinDenseParallel(d, c, sched.NewVirtualPool(8, sched.CostModel{}))
	for i := range serial.Bins {
		if serial.Bins[i] != par.Bins[i] {
			t.Fatalf("bin %d differs under virtual pool", i)
		}
	}
}

func TestFromDenseParallel(t *testing.T) {
	d := randomDense(1000, 6, 13)
	labels := make([]float32, 1000)
	pool := sched.NewPool(4)
	ds, err := FromDenseParallel("par", d, labels, 32, pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	ref, err := FromDense("ref", d, labels, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Binned.Bins {
		if ref.Binned.Bins[i] != ds.Binned.Bins[i] {
			t.Fatalf("bin %d differs", i)
		}
	}
	if _, err := FromDenseParallel("bad", d, labels[:10], 32, pool); err == nil {
		t.Fatal("label mismatch accepted")
	}
}

func BenchmarkBuildCutsSerial(b *testing.B) {
	d := randomDense(20000, 32, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildCuts(d, 255)
	}
}

func BenchmarkBuildCutsParallel(b *testing.B) {
	d := randomDense(20000, 32, 1)
	pool := sched.NewPool(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildCutsParallel(d, 255, pool)
	}
}
