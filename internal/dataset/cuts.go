package dataset

import (
	"fmt"
	"math"
	"sort"
)

// MissingBin is the reserved bin id for missing values. Real bins occupy
// [0, MaxBins) with MaxBins <= 255, so every bin id fits in one byte — the
// paper's 4x input-memory reduction (Sec. IV-E).
const MissingBin = uint8(255)

// MaxAllowedBins is the largest usable number of value bins (255 real bins
// plus the missing sentinel fills the byte).
const MaxAllowedBins = 255

// Cuts holds per-feature ascending cut points produced by quantile
// sketching. Bin k of feature f covers values v with
// cuts[k-1] < v <= cuts[k] (bin 0 covers v <= cuts[0]); values above the
// last cut clamp into the last bin.
type Cuts struct {
	M       int
	Ptr     []int32   // length M+1; cut points of feature f are Vals[Ptr[f]:Ptr[f+1]]
	Vals    []float32 // strictly increasing within each feature
	MaxBins int
}

// FeatureCuts returns the cut points of feature f (aliases internal
// storage).
func (c *Cuts) FeatureCuts(f int) []float32 {
	return c.Vals[c.Ptr[f]:c.Ptr[f+1]]
}

// NumBins returns the number of bins of feature f (at least 1 for any
// feature that had data; 1 for constant features).
func (c *Cuts) NumBins(f int) int {
	n := int(c.Ptr[f+1] - c.Ptr[f])
	if n == 0 {
		return 1
	}
	return n
}

// MaxNumBins returns the largest per-feature bin count.
func (c *Cuts) MaxNumBins() int {
	max := 1
	for f := 0; f < c.M; f++ {
		if n := c.NumBins(f); n > max {
			max = n
		}
	}
	return max
}

// BinValue maps a raw value of feature f to its bin id. NaN maps to
// MissingBin.
func (c *Cuts) BinValue(f int, v float32) uint8 {
	if v != v { // NaN
		return MissingBin
	}
	cuts := c.Vals[c.Ptr[f]:c.Ptr[f+1]]
	if len(cuts) == 0 {
		return 0
	}
	// First cut >= v; values above the last cut clamp to the last bin.
	lo, hi := 0, len(cuts)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cuts[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint8(lo)
}

// UpperBound returns the raw-value upper bound of bin b for feature f, i.e.
// the split threshold "go left iff value <= UpperBound(f, b)".
func (c *Cuts) UpperBound(f int, b uint8) float32 {
	cuts := c.FeatureCuts(f)
	if len(cuts) == 0 {
		return float32(math.Inf(1))
	}
	if int(b) >= len(cuts) {
		return cuts[len(cuts)-1]
	}
	return cuts[b]
}

// Validate checks structural consistency: monotone pointers and strictly
// increasing cut values per feature.
func (c *Cuts) Validate() error {
	if len(c.Ptr) != c.M+1 {
		return fmt.Errorf("dataset: cuts ptr length %d != M+1=%d", len(c.Ptr), c.M+1)
	}
	for f := 0; f < c.M; f++ {
		if c.Ptr[f] > c.Ptr[f+1] {
			return fmt.Errorf("dataset: cuts ptr not monotone at feature %d", f)
		}
		cuts := c.FeatureCuts(f)
		for k := 1; k < len(cuts); k++ {
			if !(cuts[k-1] < cuts[k]) {
				return fmt.Errorf("dataset: cuts not strictly increasing at feature %d index %d", f, k)
			}
		}
		if n := c.NumBins(f); n > c.MaxBins {
			return fmt.Errorf("dataset: feature %d has %d bins > max %d", f, n, c.MaxBins)
		}
	}
	return nil
}

// BuildCuts computes per-feature quantile cut points from a dense matrix.
// maxBins caps the number of bins per feature (clamped to MaxAllowedBins;
// values <= 1 default to 255). Missing values (NaN) are ignored.
//
// This is the "histogram initialization" step the paper inherits from the
// XGBoost code base: an exact quantile computation over the (possibly
// deduplicated) sorted values of each feature.
func BuildCuts(d *Dense, maxBins int) *Cuts {
	if maxBins <= 1 || maxBins > MaxAllowedBins {
		maxBins = MaxAllowedBins
	}
	c := &Cuts{M: d.M, Ptr: make([]int32, d.M+1), MaxBins: maxBins}
	col := make([]float32, 0, d.N)
	for f := 0; f < d.M; f++ {
		col = col[:0]
		for i := 0; i < d.N; i++ {
			v := d.Values[i*d.M+f]
			if v == v { // skip NaN
				col = append(col, v)
			}
		}
		cuts := quantileCuts(col, maxBins)
		c.Vals = append(c.Vals, cuts...)
		c.Ptr[f+1] = int32(len(c.Vals))
	}
	return c
}

// BuildCutsCSR computes cut points from a CSR matrix. Absent entries are
// treated as missing, matching the engines' default-direction handling.
func BuildCutsCSR(s *CSR, maxBins int) *Cuts {
	if maxBins <= 1 || maxBins > MaxAllowedBins {
		maxBins = MaxAllowedBins
	}
	c := &Cuts{M: s.M, Ptr: make([]int32, s.M+1), MaxBins: maxBins}
	// Bucket values per feature.
	counts := make([]int, s.M)
	for _, col := range s.Cols {
		counts[col]++
	}
	offs := make([]int, s.M+1)
	for f := 0; f < s.M; f++ {
		offs[f+1] = offs[f] + counts[f]
	}
	byFeat := make([]float32, len(s.Vals))
	fill := make([]int, s.M)
	copy(fill, offs[:s.M])
	for k, col := range s.Cols {
		byFeat[fill[col]] = s.Vals[k]
		fill[col]++
	}
	for f := 0; f < s.M; f++ {
		cuts := quantileCuts(byFeat[offs[f]:offs[f+1]], maxBins)
		c.Vals = append(c.Vals, cuts...)
		c.Ptr[f+1] = int32(len(c.Vals))
	}
	return c
}

// quantileCuts sorts vals in place and returns at most maxBins strictly
// increasing cut points such that each bin receives roughly equal mass.
// A constant feature yields a single cut (one bin). An empty slice yields
// nil (no data: every value at prediction time clamps to bin 0).
func quantileCuts(vals []float32, maxBins int) []float32 {
	if len(vals) == 0 {
		return nil
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	// Distinct values.
	distinct := vals[:0:len(vals)] // reuse storage; safe since sorted scan is forward
	prev := float32(math.Inf(-1))
	for _, v := range vals {
		if v != prev {
			distinct = append(distinct, v)
			prev = v
		}
	}
	if len(distinct) <= maxBins {
		out := make([]float32, len(distinct))
		copy(out, distinct)
		return out
	}
	// Pick maxBins quantile boundaries over the distinct values. Using
	// distinct values (not raw mass) keeps cuts strictly increasing.
	out := make([]float32, 0, maxBins)
	n := len(distinct)
	for k := 1; k <= maxBins; k++ {
		idx := k*n/maxBins - 1
		v := distinct[idx]
		if len(out) == 0 || v > out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
