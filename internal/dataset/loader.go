package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// finite32 reports whether v parsed into a float32 stays finite (strconv
// happily parses "nan" and "inf", which no objective can train on).
func finite32(v float64) bool {
	f := float32(v)
	return f == f && !math.IsInf(float64(f), 0)
}

// ReadLibSVM parses the libsvm text format ("label idx:val idx:val ...",
// zero-based or one-based indices auto-detected as zero-based here; comments
// starting with '#' and blank lines are skipped). numFeatures <= 0 infers
// the feature count from the data.
func ReadLibSVM(r io.Reader, numFeatures int) (*CSR, []float32, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var (
		labels []float32
		rows   [][]int32
		vrows  [][]float32
		maxCol int32 = -1
	)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		lab, err := strconv.ParseFloat(fields[0], 32)
		if err != nil {
			return nil, nil, fmt.Errorf("libsvm line %d: bad label %q: %w", lineNo, fields[0], err)
		}
		if !finite32(lab) {
			return nil, nil, fmt.Errorf("libsvm line %d: non-finite label %q", lineNo, fields[0])
		}
		cols := make([]int32, 0, len(fields)-1)
		vals := make([]float32, 0, len(fields)-1)
		for _, f := range fields[1:] {
			k := strings.IndexByte(f, ':')
			if k <= 0 {
				return nil, nil, fmt.Errorf("libsvm line %d: bad pair %q", lineNo, f)
			}
			idx, err := strconv.Atoi(f[:k])
			if err != nil || idx < 0 {
				return nil, nil, fmt.Errorf("libsvm line %d: bad index %q", lineNo, f[:k])
			}
			v, err := strconv.ParseFloat(f[k+1:], 32)
			if err != nil {
				return nil, nil, fmt.Errorf("libsvm line %d: bad value %q: %w", lineNo, f[k+1:], err)
			}
			if !finite32(v) {
				// In the sparse format, missing means absent: an explicit
				// NaN/Inf is corrupt input, not a missing-value marker.
				return nil, nil, fmt.Errorf("libsvm line %d: non-finite value %q for feature %d", lineNo, f[k+1:], idx)
			}
			cols = append(cols, int32(idx))
			vals = append(vals, float32(v))
			if int32(idx) > maxCol {
				maxCol = int32(idx)
			}
		}
		labels = append(labels, float32(lab))
		rows = append(rows, cols)
		vrows = append(vrows, vals)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(labels) == 0 {
		return nil, nil, fmt.Errorf("libsvm: no data rows")
	}
	m := numFeatures
	if m <= 0 {
		m = int(maxCol) + 1
	}
	b := NewCSRBuilder(m)
	for i := range rows {
		if err := b.AddRow(rows[i], vrows[i]); err != nil {
			return nil, nil, fmt.Errorf("libsvm row %d: %w", i, err)
		}
	}
	return b.Build(), labels, nil
}

// LoadLibSVMFile reads a libsvm file from disk and builds a Dataset.
func LoadLibSVMFile(path string, numFeatures, maxBins int) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	csr, labels, err := ReadLibSVM(f, numFeatures)
	if err != nil {
		return nil, err
	}
	return FromCSR(path, csr, labels, maxBins)
}

// WriteLibSVM writes a dense matrix with labels in libsvm format. Missing
// (NaN) values are omitted.
func WriteLibSVM(w io.Writer, d *Dense, labels []float32) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < d.N; i++ {
		if _, err := fmt.Fprintf(bw, "%g", labels[i]); err != nil {
			return err
		}
		row := d.Row(i)
		for f, v := range row {
			if v != v {
				continue
			}
			if _, err := fmt.Fprintf(bw, " %d:%g", f, v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses simple numeric CSV with the label in the first column and
// no header. Empty fields become missing values.
func ReadCSV(r io.Reader) (*Dense, []float32, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var (
		labels []float32
		data   [][]float32
		m      = -1
	)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if m == -1 {
			m = len(fields) - 1
		} else if len(fields)-1 != m {
			return nil, nil, fmt.Errorf("csv line %d: %d features, want %d", lineNo, len(fields)-1, m)
		}
		lab, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 32)
		if err != nil {
			return nil, nil, fmt.Errorf("csv line %d: bad label %q: %w", lineNo, fields[0], err)
		}
		if !finite32(lab) {
			return nil, nil, fmt.Errorf("csv line %d: non-finite label %q", lineNo, fields[0])
		}
		row := make([]float32, m)
		for j := 1; j <= m; j++ {
			s := strings.TrimSpace(fields[j])
			if s == "" {
				row[j-1] = nanF32()
				continue
			}
			v, err := strconv.ParseFloat(s, 32)
			if err != nil {
				return nil, nil, fmt.Errorf("csv line %d col %d: %w", lineNo, j, err)
			}
			if math.IsInf(v, 0) || math.IsInf(float64(float32(v)), 0) {
				return nil, nil, fmt.Errorf("csv line %d col %d: infinite value %q", lineNo, j, s)
			}
			// An explicit "nan" is treated like an empty field: missing.
			row[j-1] = float32(v)
		}
		labels = append(labels, float32(lab))
		data = append(data, row)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(labels) == 0 {
		return nil, nil, fmt.Errorf("csv: no data rows")
	}
	if m < 0 {
		m = 0
	}
	d := NewDense(len(data), m)
	for i, row := range data {
		copy(d.Row(i), row)
	}
	return d, labels, nil
}

// LoadCSVFile reads a CSV file from disk and builds a Dataset.
func LoadCSVFile(path string, maxBins int) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, labels, err := ReadCSV(f)
	if err != nil {
		return nil, err
	}
	return FromDense(path, d, labels, maxBins)
}

func nanF32() float32 {
	v := float32(0)
	return v / v
}
