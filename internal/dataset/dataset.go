package dataset

import (
	"fmt"
	"math"
)

// Dataset bundles everything the training engines need: labels, the binned
// input, the cuts that produced it, and cached shape statistics.
type Dataset struct {
	Name   string
	Labels []float32
	Binned *BinnedMatrix
	Cuts   *Cuts
}

// NumRows returns the number of training rows.
func (ds *Dataset) NumRows() int { return ds.Binned.N }

// NumFeatures returns the number of features.
func (ds *Dataset) NumFeatures() int { return ds.Binned.M }

// Validate checks cross-structure consistency.
func (ds *Dataset) Validate() error {
	if ds.Binned == nil || ds.Cuts == nil {
		return fmt.Errorf("dataset: missing binned matrix or cuts")
	}
	if len(ds.Labels) != ds.Binned.N {
		return fmt.Errorf("dataset: %d labels for %d rows", len(ds.Labels), ds.Binned.N)
	}
	if err := ds.Cuts.Validate(); err != nil {
		return err
	}
	return ds.Binned.Validate(ds.Cuts)
}

func errLabels(labels, rows int) error {
	return fmt.Errorf("dataset: %d labels for %d rows", labels, rows)
}

// FromDense builds a Dataset from a dense value matrix and labels.
func FromDense(name string, d *Dense, labels []float32, maxBins int) (*Dataset, error) {
	if len(labels) != d.N {
		return nil, errLabels(len(labels), d.N)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	cuts := BuildCuts(d, maxBins)
	return &Dataset{Name: name, Labels: labels, Binned: BinDense(d, cuts), Cuts: cuts}, nil
}

// FromCSR builds a Dataset from a sparse matrix and labels.
func FromCSR(name string, s *CSR, labels []float32, maxBins int) (*Dataset, error) {
	if len(labels) != s.N {
		return nil, fmt.Errorf("dataset: %d labels for %d rows", len(labels), s.N)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cuts := BuildCutsCSR(s, maxBins)
	return &Dataset{Name: name, Labels: labels, Binned: BinCSR(s, cuts), Cuts: cuts}, nil
}

// Stats are the shape statistics of Table III: S is the fraction of present
// (non-missing) entries; CV is the coefficient of variation (stdev/mean) of
// the per-feature used-bin counts, measuring how uneven the bin distribution
// is (high CV => workload imbalance across features).
type Stats struct {
	N, M    int
	S       float64
	CV      float64
	MaxBins int
	// BinsPerFeature is the number of distinct bins observed per feature.
	BinsPerFeature []int
}

// ComputeStats scans the dataset once and returns its shape statistics.
func ComputeStats(ds *Dataset) Stats {
	n, m := ds.NumRows(), ds.NumFeatures()
	st := Stats{N: n, M: m, BinsPerFeature: make([]int, m)}
	if n == 0 || m == 0 {
		return st
	}
	present := 0
	seen := make([]bool, 256)
	bm := ds.Binned
	for f := 0; f < m; f++ {
		for i := range seen {
			seen[i] = false
		}
		cnt := 0
		for i := 0; i < n; i++ {
			b := bm.Bins[i*m+f]
			if b == MissingBin {
				continue
			}
			present++
			if !seen[b] {
				seen[b] = true
				cnt++
			}
		}
		st.BinsPerFeature[f] = cnt
		if cnt > st.MaxBins {
			st.MaxBins = cnt
		}
	}
	st.S = float64(present) / float64(n*m)
	mean := 0.0
	for _, c := range st.BinsPerFeature {
		mean += float64(c)
	}
	mean /= float64(m)
	if mean > 0 {
		varsum := 0.0
		for _, c := range st.BinsPerFeature {
			d := float64(c) - mean
			varsum += d * d
		}
		st.CV = math.Sqrt(varsum/float64(m)) / mean
	}
	return st
}

// String formats the statistics as a Table III row.
func (s Stats) String() string {
	return fmt.Sprintf("N=%d M=%d S=%.2f CV=%.2f maxbins=%d", s.N, s.M, s.S, s.CV, s.MaxBins)
}
