package obs

import (
	"bytes"
	"strings"
	"testing"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.String()
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("rows_total", "Rows processed.").Add(42)
	r.Gauge("depth", "Queue depth.").Set(3.5)
	r.Counter(Labels("phase_seconds_total", "phase", "BuildHist"), "Per-phase time.").Add(7)
	r.Counter(Labels("phase_seconds_total", "phase", "FindSplit"), "Per-phase time.").Add(9)
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.5, 2})
	h.Observe(0.1)
	h.Observe(1)
	h.Observe(10)

	out := scrape(t, r)
	for _, want := range []string{
		"# HELP rows_total Rows processed.",
		"# TYPE rows_total counter",
		"rows_total 42",
		"# TYPE depth gauge",
		"depth 3.5",
		`phase_seconds_total{phase="BuildHist"} 7`,
		`phase_seconds_total{phase="FindSplit"} 9`,
		`lat_seconds_bucket{le="0.5"} 1`,
		`lat_seconds_bucket{le="2"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 11.1",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Labeled series sharing a base name get exactly one HELP/TYPE header.
	if got := strings.Count(out, "# TYPE phase_seconds_total counter"); got != 1 {
		t.Errorf("phase_seconds_total TYPE header appears %d times", got)
	}
}

func TestRegistryIdempotentAndKindChecked(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "other help")
	if a != b {
		t.Fatal("re-registration returned a different counter handle")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("registering x_total as a gauge did not panic")
			}
		}()
		r.Gauge("x_total", "help")
	}()
}

func TestRegistryFuncReplace(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("util", "Utilization.", func() float64 { return 0.25 })
	if out := scrape(t, r); !strings.Contains(out, "util 0.25\n") {
		t.Fatalf("first binding not scraped:\n%s", out)
	}
	// A second run rebinds the source; the scrape must follow.
	r.GaugeFunc("util", "Utilization.", func() float64 { return 0.75 })
	if out := scrape(t, r); !strings.Contains(out, "util 0.75\n") {
		t.Fatalf("rebinding not scraped:\n%s", out)
	}
}

func TestBadMetricNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "0bad", "has space", "unbalanced{", `{x="y"}`} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			r.Counter(name, "")
		}()
	}
}

func TestLabelsEscaping(t *testing.T) {
	got := Labels("m", "k", `va"l\ue`+"\n")
	want := `m{k="va\"l\\ue\n"}`
	if got != want {
		t.Fatalf("Labels = %q, want %q", got, want)
	}
}

func TestNilMetricHandlesSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metric handles reported values")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(b) != len(want) {
		t.Fatalf("got %v", b)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("got %v, want %v", b, want)
		}
	}
}
