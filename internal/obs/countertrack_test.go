package obs

import (
	"strings"
	"testing"
)

// TestCounterTrackEvents: 'C' samples carry their series values, and
// per-worker lanes get the lane suffixed into the track name at
// serialization time so viewers render one stacked chart per worker
// while call sites keep a constant (lintable) name.
func TestCounterTrackEvents(t *testing.T) {
	tr := NewTracer(0)
	tr.CounterTrack("perf", "state-seconds", 0, Arg{Key: "Work", Value: 1.5})
	tr.CounterTrack("perf", "state-seconds", 2,
		Arg{Key: "Work", Value: 0.75}, Arg{Key: "BarrierWait", Value: 0.25})

	doc := decodeTrace(t, tr)
	byName := map[string]map[string]any{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "C" {
			continue
		}
		if ev.Cat != "perf" {
			t.Errorf("counter event category %q, want perf", ev.Cat)
		}
		byName[ev.Name] = ev.Args
	}
	orch, ok := byName["state-seconds"]
	if !ok {
		t.Fatalf("lane-0 counter track missing (got %v)", byName)
	}
	if orch["Work"] != 1.5 {
		t.Errorf("lane-0 args = %v", orch)
	}
	worker, ok := byName["state-seconds worker-1"]
	if !ok {
		t.Fatalf("per-worker counter track not name-suffixed (got %v)", byName)
	}
	if worker["Work"] != 0.75 || worker["BarrierWait"] != 0.25 {
		t.Errorf("worker lane args = %v", worker)
	}
}

// TestCounterTrackDegenerate: nil tracers and empty samples record
// nothing — a counter event with no series would render as a zero-height
// band and is dropped at the call.
func TestCounterTrackDegenerate(t *testing.T) {
	var nilTr *Tracer
	nilTr.CounterTrack("perf", "state-seconds", 1, Arg{Key: "Work", Value: 1})

	tr := NewTracer(0)
	tr.CounterTrack("perf", "state-seconds", 1)
	if n := tr.Len(); n != 0 {
		t.Errorf("empty-args CounterTrack recorded %d events", n)
	}
}

// TestHistogramBucketBoundaries pins the le (less-or-equal) bucket
// convention: a sample exactly on a bound belongs to that bound's
// bucket, and the exposition renders cumulative counts ending at +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	// Deliberately unsorted bounds: registration must sort them.
	h := r.Histogram("probe_seconds", "Boundary probe.", []float64{4, 1, 2})
	for _, v := range []float64{1, 1.5, 2, 4, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 13.5 {
		t.Fatalf("sum = %g, want 13.5", h.Sum())
	}
	out := scrape(t, r)
	for _, want := range []string{
		`probe_seconds_bucket{le="1"} 1`,    // the sample exactly on 1
		`probe_seconds_bucket{le="2"} 3`,    // + 1.5 and the sample on 2
		`probe_seconds_bucket{le="4"} 4`,    // + the sample on 4
		`probe_seconds_bucket{le="+Inf"} 5`, // + 5, the overflow sample
		"probe_seconds_count 5",
		"probe_seconds_sum 13.5",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative counts must be monotone — the +Inf bucket equals count.
}

// TestHistogramDefaultBuckets: a nil bucket slice selects the default
// duration buckets, whose span must cover both a fast block task (sub-ms)
// and a slow full-tree build (tens of seconds) without overflowing.
func TestHistogramDefaultBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", "Default buckets.", nil)
	h.Observe(2e-4) // inside the smallest decades
	h.Observe(50)   // near the top bound, still not +Inf-only
	out := scrape(t, r)
	if !strings.Contains(out, `t_seconds_bucket{le="0.0001"} 0`) {
		t.Errorf("default buckets do not start at 100µs:\n%s", out)
	}
	if !strings.Contains(out, "t_seconds_count 2") {
		t.Errorf("count line missing:\n%s", out)
	}
	last := DefTimeBuckets[len(DefTimeBuckets)-1]
	if last < 50 {
		t.Errorf("default bucket ceiling %g < 50s: slow builds land in +Inf", last)
	}
}
