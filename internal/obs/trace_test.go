package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// parsedTrace mirrors the Chrome trace-event wire format for decoding in
// tests.
type parsedTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		ID   string         `json:"id"`
		BP   string         `json:"bp"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	OtherData map[string]any `json:"otherData"`
}

func decodeTrace(t *testing.T, tr *Tracer) parsedTrace {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc parsedTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	return doc
}

func TestTraceJSONWellFormed(t *testing.T) {
	tr := NewTracer(0)
	outer := tr.StartSpan("tree", "BuildTree")
	inner := tr.StartSpanTID("block-task", "hist-dp", 2)
	inner.End()
	tr.Instant("queue", "push", 0)
	outer.EndWith(Arg{Key: "leaves", Value: 31})

	doc := decodeTrace(t, tr)
	var spans, instants, meta int
	threadNames := map[int]string{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Dur < 0 {
				t.Errorf("span %s has negative dur %f", ev.Name, ev.Dur)
			}
		case "i":
			instants++
		case "M":
			meta++
			if ev.Name == "thread_name" {
				threadNames[ev.TID] = ev.Args["name"].(string)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if spans != 2 || instants != 1 || meta == 0 {
		t.Fatalf("got %d spans, %d instants, %d metadata events", spans, instants, meta)
	}
	if threadNames[0] != "orchestrator" || threadNames[2] != "worker-1" {
		t.Fatalf("thread names %v", threadNames)
	}
	// The EndWith annotation must round-trip.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "BuildTree" && ev.Args["leaves"] == float64(31) {
			found = true
		}
	}
	if !found {
		t.Fatal("BuildTree span lost its leaves annotation")
	}
}

// TestConcurrentSpansNestWellFormed hammers one tracer from many goroutines
// (one lane each, as the instrumentation convention requires) and checks
// that every lane's span intervals are properly nested — either disjoint or
// contained, never partially overlapping. Run under -race this also proves
// the tracer is data-race free.
func TestConcurrentSpansNestWellFormed(t *testing.T) {
	tr := NewTracer(0)
	const workers, depth, reps = 8, 3, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < reps; r++ {
				var open []Span
				for d := 0; d < depth; d++ {
					open = append(open, tr.StartSpanTID("cat", "span", w+1))
				}
				for i := len(open) - 1; i >= 0; i-- {
					open[i].End()
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := tr.Len(), workers*depth*reps; got != want {
		t.Fatalf("recorded %d events, want %d", got, want)
	}

	doc := decodeTrace(t, tr)
	type iv struct{ s, e float64 }
	lanes := map[int][]iv{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			lanes[ev.TID] = append(lanes[ev.TID], iv{ev.TS, ev.TS + ev.Dur})
		}
	}
	if len(lanes) != workers {
		t.Fatalf("%d lanes, want %d", len(lanes), workers)
	}
	for tid, ivs := range lanes {
		for i := 0; i < len(ivs); i++ {
			for j := i + 1; j < len(ivs); j++ {
				a, b := ivs[i], ivs[j]
				disjoint := a.e <= b.s || b.e <= a.s
				nested := (a.s <= b.s && b.e <= a.e) || (b.s <= a.s && a.e <= b.e)
				if !disjoint && !nested {
					t.Fatalf("lane %d: partially overlapping spans [%f,%f] and [%f,%f]",
						tid, a.s, a.e, b.s, b.e)
				}
			}
		}
	}
}

// TestMultiNodeLanesAndFlows exercises the explicit-lane API the simulated
// cluster uses: per-node pid groups with registered process names, spans
// and instants at explicit virtual timestamps, and matched send→recv flow
// arrows across pids.
func TestMultiNodeLanesAndFlows(t *testing.T) {
	tr := NewTracer(0)
	for node := 0; node < 3; node++ {
		pid := node + 2
		tr.SetProcessName(pid, "node-"+string(rune('0'+node)))
		tr.SpanAt("dist-node", "build-hist", pid, 0, int64(node)*100, 50)
	}
	tr.InstantAt("dist-node", "node-death", 3, 0, 400)
	tr.FlowStartAt("dist-comm", "ghsum", 2, 0, 150, 7)
	tr.FlowEndAt("dist-comm", "ghsum", 3, 0, 180, 7)

	doc := decodeTrace(t, tr)
	procNames := map[int]string{}
	var flowStart, flowEnd int
	flowIDs := map[string][2]int{} // id -> {start pid, end pid}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				procNames[ev.PID] = ev.Args["name"].(string)
			}
		case "s":
			flowStart++
			ids := flowIDs[ev.ID]
			ids[0] = ev.PID
			flowIDs[ev.ID] = ids
		case "f":
			flowEnd++
			if ev.BP != "e" {
				t.Errorf("flow end missing bp=e binding: %+v", ev)
			}
			ids := flowIDs[ev.ID]
			ids[1] = ev.PID
			flowIDs[ev.ID] = ids
		}
	}
	if procNames[1] != "harpgbdt" {
		t.Errorf("default pid not named: %v", procNames)
	}
	for node := 0; node < 3; node++ {
		if got := procNames[node+2]; got != "node-"+string(rune('0'+node)) {
			t.Errorf("node %d pid name = %q", node, got)
		}
	}
	if flowStart != 1 || flowEnd != 1 {
		t.Fatalf("flow events: %d starts, %d ends, want 1 each", flowStart, flowEnd)
	}
	if ids := flowIDs["7"]; ids[0] != 2 || ids[1] != 3 {
		t.Fatalf("flow 7 links pids %v, want send on 2, recv on 3", ids)
	}
	// Explicit timestamps must round-trip through the µs wire format.
	for _, ev := range doc.TraceEvents {
		if ev.Name == "node-death" && ev.TS != 0.4 {
			t.Errorf("node-death at %v µs, want 0.4", ev.TS)
		}
	}
}

func TestDisabledSpanAllocatesNothing(t *testing.T) {
	SetDefault(nil)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := StartSpanTID("cat", "name", 3)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled StartSpan+End allocated %v bytes/op, want 0", allocs)
	}
}

func TestDefaultObserverRouting(t *testing.T) {
	defer SetDefault(nil)
	o := NewWith(NewRegistry())
	SetDefault(o)
	if TracingEnabled() {
		t.Fatal("tracing reported enabled without a tracer")
	}
	if sp := StartSpan("a", "b"); sp.Active() {
		t.Fatal("got an active span without a tracer")
	}
	o.EnableTracing(16)
	SetDefault(o)
	if !TracingEnabled() {
		t.Fatal("tracing not enabled after EnableTracing + SetDefault")
	}
	sp := StartSpan("a", "b")
	if !sp.Active() {
		t.Fatal("span inactive with tracer installed")
	}
	sp.End()
	Instant("a", "mark", 0)
	if got := o.Tracer.Len(); got != 2 {
		t.Fatalf("tracer recorded %d events, want 2", got)
	}
}

func TestTracerEventCap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Instant("cat", "ev", 0)
	}
	if tr.Len() != 4 || tr.Dropped() != 6 {
		t.Fatalf("len %d dropped %d, want 4 and 6", tr.Len(), tr.Dropped())
	}
	doc := decodeTrace(t, tr)
	if doc.OtherData["droppedEvents"] != float64(6) {
		t.Fatalf("otherData %v missing droppedEvents=6", doc.OtherData)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpanTID("a", "b", 1)
	sp.End()
	sp.EndWith(Arg{Key: "k", Value: 1})
	tr.Instant("a", "b", 0)
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer reported events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc parsedTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer JSON invalid: %v", err)
	}
}

func TestProgressSnapshot(t *testing.T) {
	o := NewWith(NewRegistry())
	o.SetProgress("round", 3)
	o.UpdateProgress(map[string]any{"loss": 0.5, "round": 4})
	p := o.Progress()
	if p["round"] != 4 || p["loss"] != 0.5 {
		t.Fatalf("progress %v", p)
	}
	// Nil-safety.
	var nilO *Observer
	nilO.SetProgress("x", 1)
	nilO.UpdateProgress(map[string]any{"x": 1})
	if nilO.Progress() != nil {
		t.Fatal("nil observer returned progress")
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	SetDefault(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpanTID("cat", "name", 1)
		sp.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	o := NewWith(NewRegistry())
	o.EnableTracing(1 << 10)
	SetDefault(o)
	defer SetDefault(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpanTID("cat", "name", 1)
		sp.End()
	}
}
