package obs

// The flight recorder is the crash post-mortem layer: a bounded lock-free
// ring buffer of the most recent structured log events. Every event the
// obs.Logger emits is recorded here regardless of the output level, so
// when a worker panics or an injected fault kills the run, Dump writes the
// last events — run id, node, round, depth, phase keys intact — to a
// checksummed safeio artifact that survives the process.
//
// Record is wait-free: one atomic counter increment plus one atomic slot
// store, no locks, so the recorder is safe to feed from panic paths and
// hot loops alike.

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"harpgbdt/internal/safeio"
)

// DefaultFlightEvents is the default ring capacity — enough to hold many
// rounds of per-round events while keeping a dump file small.
const DefaultFlightEvents = 256

// FlightEvent is one recorded structured-log event.
type FlightEvent struct {
	// TimeUnixNanos is the wall-clock event time.
	TimeUnixNanos int64 `json:"t"`
	// Seq is the event's position in the recorder's total event sequence
	// (monotonic; dumps of a wrapped ring expose how many events preceded
	// the retained window).
	Seq uint64 `json:"seq"`
	// Level is the slog level string (DEBUG, INFO, WARN, ERROR).
	Level string `json:"level"`
	// Msg is the constant event message.
	Msg string `json:"msg"`
	// Attrs are the event's key/value annotations (run, node, round, ...).
	Attrs map[string]any `json:"attrs,omitempty"`
}

// FlightRecorder is the bounded ring. The zero value is unusable; use
// NewFlightRecorder.
type FlightRecorder struct {
	slots  []atomic.Pointer[FlightEvent]
	cursor atomic.Uint64
	dumped atomic.Bool
	path   string
}

// NewFlightRecorder returns a recorder retaining the last `size` events
// (<= 0 selects DefaultFlightEvents). path is the Dump destination.
func NewFlightRecorder(size int, path string) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightEvents
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[FlightEvent], size), path: path}
}

// Path returns the armed dump destination.
func (r *FlightRecorder) Path() string {
	if r == nil {
		return ""
	}
	return r.path
}

// Record stores one event, overwriting the oldest when the ring is full.
// Wait-free and nil-safe.
func (r *FlightRecorder) Record(ev FlightEvent) {
	if r == nil {
		return
	}
	seq := r.cursor.Add(1) - 1
	ev.Seq = seq
	r.slots[seq%uint64(len(r.slots))].Store(&ev)
}

// Len reports how many events are currently retained.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	n := r.cursor.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Events returns the retained events oldest-first. Under concurrent
// recording the snapshot is best-effort (a slot may be overwritten while
// the ring is walked), which is exactly the fidelity a crash dump needs.
func (r *FlightRecorder) Events() []FlightEvent {
	if r == nil {
		return nil
	}
	n := r.cursor.Load()
	size := uint64(len(r.slots))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	out := make([]FlightEvent, 0, n-start)
	for seq := start; seq < n; seq++ {
		if ev := r.slots[seq%size].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	return out
}

// FlightDump is the serialized post-mortem artifact.
type FlightDump struct {
	// Reason records what triggered the dump (worker panic, injected
	// fault, training error).
	Reason string `json:"reason"`
	// DumpedUnixNanos is the dump wall-clock time.
	DumpedUnixNanos int64 `json:"dumped_unix_nanos"`
	// TotalEvents is how many events were recorded over the run; the dump
	// retains at most the ring capacity of trailing events.
	TotalEvents uint64 `json:"total_events"`
	// Events are the retained trailing events, oldest first.
	Events []FlightEvent `json:"events"`
}

// Dump writes the post-mortem artifact to the recorder's armed path as a
// checksummed safeio file. Only the first dump of a recorder wins:
// cascading failure paths (worker panic → training error → CLI exit) each
// try to dump, and the one closest to the fault is the one worth keeping.
// Nil-safe; returns the written path.
func (r *FlightRecorder) Dump(reason string) (string, error) {
	if r == nil || r.path == "" {
		return "", nil
	}
	if !r.dumped.CompareAndSwap(false, true) {
		return r.path, nil
	}
	doc := FlightDump{
		Reason:          reason,
		DumpedUnixNanos: time.Now().UnixNano(),
		TotalEvents:     r.cursor.Load(),
		Events:          r.Events(),
	}
	err := safeio.WriteFile(r.path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(doc)
	})
	if err != nil {
		return "", err
	}
	return r.path, nil
}

// ReadFlightDump loads and verifies a dump artifact: the safeio checksum
// footer must be present and valid, and the payload must parse.
func ReadFlightDump(path string) (*FlightDump, error) {
	payload, verified, err := safeio.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if !verified {
		return nil, fmt.Errorf("obs: flight dump %s has no integrity footer", path)
	}
	var doc FlightDump
	if err := json.Unmarshal(payload, &doc); err != nil {
		return nil, fmt.Errorf("obs: flight dump %s: %w", path, err)
	}
	return &doc, nil
}

// defaultFlight is the process-wide recorder the crash paths dump.
var defaultFlight atomic.Pointer[FlightRecorder]

// ArmFlightRecorder installs a process-wide flight recorder dumping to
// path on the first crash (size <= 0 selects DefaultFlightEvents). Every
// obs.Logger event is recorded into it from then on. Returns the recorder;
// passing an empty path disarms.
func ArmFlightRecorder(path string, size int) *FlightRecorder {
	if path == "" {
		defaultFlight.Store(nil)
		return nil
	}
	r := NewFlightRecorder(size, path)
	defaultFlight.Store(r)
	return r
}

// Flight returns the armed process-wide recorder (nil when disarmed).
func Flight() *FlightRecorder { return defaultFlight.Load() }

// DumpFlight dumps the process-wide recorder (no-op when disarmed).
// Crash paths — worker panic recovery, injected-fault panics, training
// error exits — call this so every crash leaves a post-mortem file.
func DumpFlight(reason string) (string, error) {
	return defaultFlight.Load().Dump(reason)
}
