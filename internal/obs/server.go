package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// Server is the live observability endpoint of a training run:
//
//	/metrics        Prometheus text exposition of the observer's registry
//	/progress       JSON snapshot of the run (round, losses, timings)
//	/trace          the Chrome trace recorded so far (when tracing is on)
//	/healthz        liveness (200 as long as the process serves HTTP)
//	/readyz         readiness (503 until SetReady's probe reports true)
//	/debug/pprof/*  the standard Go profiling handlers
//
// Additional handlers (the serving layer's /predict) attach with Mount.
// Construct with Serve; the zero value is not usable.
type Server struct {
	mux *http.ServeMux
	srv *http.Server
	ln  net.Listener
	// serveErr carries the Serve goroutine's exit error to Close — the
	// join path: Serve always returns after srv.Close, so the receive in
	// Close provably terminates the goroutine's observable lifetime.
	serveErr chan error
	// ready is the readiness probe behind /readyz. Nil means "no probe
	// installed" — a pure observability server is ready by definition;
	// a serving process installs a model-armed probe with SetReady.
	ready atomic.Pointer[func() bool]
}

// Serve starts the observability HTTP server on addr (":0" picks a free
// port; read the chosen address back with Addr). The server runs until
// Close.
func Serve(addr string, o *Observer) (*Server, error) {
	if o == nil {
		o = New()
	}
	mux := http.NewServeMux()
	s := &Server{
		mux:      mux,
		srv:      &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		serveErr: make(chan error, 1),
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(o.Progress())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		if o.Tracer == nil {
			http.Error(w, "tracing disabled (run with -trace-out)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		o.Tracer.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "ok\n")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if fn := s.ready.Load(); fn != nil && !(*fn)() {
			http.Error(w, "not ready\n", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, "ready\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "harpgbdt observability\n\n/metrics\n/progress\n/trace\n/healthz\n/readyz\n/debug/pprof/\n")
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	go func() {
		s.serveErr <- s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Mount attaches an additional handler (e.g. the serving layer's
// /predict). http.ServeMux.Handle is safe against concurrent serving;
// mounting a pattern twice panics, as with any ServeMux.
func (s *Server) Mount(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

// SetReady installs the readiness probe behind /readyz. A nil probe
// restores the default (always ready).
func (s *Server) SetReady(fn func() bool) {
	if fn == nil {
		s.ready.Store(nil)
		return
	}
	s.ready.Store(&fn)
}

// Close shuts the server down immediately and joins the Serve goroutine,
// surfacing any serve-side failure the run would otherwise never see.
// The http.ErrServerClosed the join delivers on a clean shutdown is the
// expected outcome, not an error.
func (s *Server) Close() error {
	closeErr := s.srv.Close()
	serveErr := <-s.serveErr
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return closeErr
}
