package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the live observability endpoint of a training run:
//
//	/metrics        Prometheus text exposition of the observer's registry
//	/progress       JSON snapshot of the run (round, losses, timings)
//	/trace          the Chrome trace recorded so far (when tracing is on)
//	/debug/pprof/*  the standard Go profiling handlers
//
// Construct with Serve; the zero value is not usable.
type Server struct {
	srv *http.Server
	ln  net.Listener
	// serveErr carries the Serve goroutine's exit error to Close — the
	// join path: Serve always returns after srv.Close, so the receive in
	// Close provably terminates the goroutine's observable lifetime.
	serveErr chan error
}

// Serve starts the observability HTTP server on addr (":0" picks a free
// port; read the chosen address back with Addr). The server runs until
// Close.
func Serve(addr string, o *Observer) (*Server, error) {
	if o == nil {
		o = New()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(o.Progress())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		if o.Tracer == nil {
			http.Error(w, "tracing disabled (run with -trace-out)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		o.Tracer.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "harpgbdt observability\n\n/metrics\n/progress\n/trace\n/debug/pprof/\n")
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		srv:      &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:       ln,
		serveErr: make(chan error, 1),
	}
	go func() {
		s.serveErr <- s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately and joins the Serve goroutine,
// surfacing any serve-side failure the run would otherwise never see.
// The http.ErrServerClosed the join delivers on a clean shutdown is the
// expected outcome, not an error.
func (s *Server) Close() error {
	closeErr := s.srv.Close()
	serveErr := <-s.serveErr
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return closeErr
}
