package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"
)

// DefaultMaxEvents bounds a tracer's in-memory event buffer (~64 MB at the
// default). Events past the cap are counted in Dropped instead of recorded,
// so a long training run cannot exhaust memory.
const DefaultMaxEvents = 1 << 20

// Arg is one key/value annotation attached to a span.
type Arg struct {
	Key   string
	Value any
}

// event is one recorded trace event (Chrome trace-event "phases": 'X' =
// complete span, 'i' = instant, 'C' = counter sample, 's'/'f' = flow
// start/end). Timestamps are nanoseconds since the tracer's epoch. pid 0
// is serialized as the in-process default lane group (pid 1); simulated
// cluster nodes record under their own pid so the merged trace shows one
// lane group per node.
type event struct {
	name, cat string
	ph        byte
	ts, dur   int64
	pid, tid  int32
	flowID    uint64
	args      []Arg
}

// Tracer records spans into a bounded in-memory buffer and serializes them
// as Chrome trace-event JSON. All methods are safe for concurrent use and
// nil-safe (a nil *Tracer records nothing).
type Tracer struct {
	epoch time.Time
	max   int

	mu       sync.Mutex
	events   []event
	dropped  int64
	procName map[int]string
}

// NewTracer returns an enabled tracer holding up to maxEvents events
// (<= 0 selects DefaultMaxEvents).
func NewTracer(maxEvents int) *Tracer {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &Tracer{epoch: time.Now(), max: maxEvents}
}

func (t *Tracer) now() int64 { return time.Since(t.epoch).Nanoseconds() }

// Span is an open trace interval. The zero Span is inert: End is a no-op,
// so call sites need no enabled-check of their own.
type Span struct {
	t         *Tracer
	cat, name string
	start     int64
	tid       int32
}

// Active reports whether the span will be recorded. Use it to skip
// building expensive EndWith arguments when tracing is off.
func (s Span) Active() bool { return s.t != nil }

// StartSpan opens a span on lane 0.
func (t *Tracer) StartSpan(cat, name string) Span { return t.StartSpanTID(cat, name, 0) }

// StartSpanTID opens a span on the given timeline lane. Nil-safe.
func (t *Tracer) StartSpanTID(cat, name string, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, cat: cat, name: name, start: t.now(), tid: int32(tid)}
}

// End records the span with no annotations.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.add(event{name: s.name, cat: s.cat, ph: 'X', ts: s.start, dur: s.t.now() - s.start, tid: s.tid})
}

// EndWith records the span with key/value annotations (shown in the trace
// viewer's detail pane). Prefer End on hot paths; argument packing is only
// worth paying for coarse spans.
func (s Span) EndWith(args ...Arg) {
	if s.t == nil {
		return
	}
	s.t.add(event{name: s.name, cat: s.cat, ph: 'X', ts: s.start, dur: s.t.now() - s.start, tid: s.tid, args: args})
}

// Instant records a zero-duration marker event. Nil-safe.
func (t *Tracer) Instant(cat, name string, tid int) {
	if t == nil {
		return
	}
	t.add(event{name: name, cat: cat, ph: 'i', ts: t.now(), tid: int32(tid)})
}

// CounterTrack records one sample of a counter track ('C' event): the
// args are the series values at this instant, rendered by the trace
// viewer as a stacked area chart on the given lane. Lanes > 0 get the
// lane suffixed to the track name at serialization time so per-worker
// tracks stay distinct; call sites keep a constant name. Nil-safe.
func (t *Tracer) CounterTrack(cat, name string, tid int, args ...Arg) {
	if t == nil || len(args) == 0 {
		return
	}
	t.add(event{name: name, cat: cat, ph: 'C', ts: t.now(), tid: int32(tid), args: args})
}

// SetProcessName names a pid lane group in the serialized trace
// (process_name metadata). The default pid group is named "harpgbdt";
// simulated cluster nodes register their own pid here so the merged trace
// shows one named lane group per node. Nil-safe.
func (t *Tracer) SetProcessName(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.procName == nil {
		t.procName = make(map[int]string)
	}
	t.procName[pid] = name
	t.mu.Unlock()
}

// SpanAt records a complete span with an explicit timestamp and duration
// (nanoseconds on the caller's clock — the simulated cluster records its
// virtual-clock timeline this way) on the given (pid, tid) lane. Nil-safe.
func (t *Tracer) SpanAt(cat, name string, pid, tid int, ts, dur int64, args ...Arg) {
	if t == nil {
		return
	}
	t.add(event{name: name, cat: cat, ph: 'X', ts: ts, dur: dur, pid: int32(pid), tid: int32(tid), args: args})
}

// InstantAt records a zero-duration marker at an explicit timestamp on the
// given (pid, tid) lane. Nil-safe.
func (t *Tracer) InstantAt(cat, name string, pid, tid int, ts int64) {
	if t == nil {
		return
	}
	t.add(event{name: name, cat: cat, ph: 'i', ts: ts, pid: int32(pid), tid: int32(tid)})
}

// FlowStartAt opens one arrow of a flow (Chrome flow-event 's') at an
// explicit timestamp: the trace viewer draws an arrow from here to the
// FlowEndAt event recorded with the same id. Used to link a simulated
// node's allreduce send to the receiving node's lane. Nil-safe.
func (t *Tracer) FlowStartAt(cat, name string, pid, tid int, ts int64, id uint64) {
	if t == nil {
		return
	}
	t.add(event{name: name, cat: cat, ph: 's', ts: ts, pid: int32(pid), tid: int32(tid), flowID: id})
}

// FlowEndAt terminates the flow arrow with the given id on the receiving
// (pid, tid) lane (Chrome flow-event 'f', bound to the enclosing slice).
// Nil-safe.
func (t *Tracer) FlowEndAt(cat, name string, pid, tid int, ts int64, id uint64) {
	if t == nil {
		return
	}
	t.add(event{name: name, cat: cat, ph: 'f', ts: ts, pid: int32(pid), tid: int32(tid), flowID: id})
}

func (t *Tracer) add(ev event) {
	t.mu.Lock()
	if len(t.events) < t.max {
		t.events = append(t.events, ev)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events were discarded at the buffer cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// jsonEvent is the Chrome trace-event wire format. Timestamps and
// durations are microseconds (fractional microseconds are allowed).
type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type jsonTrace struct {
	TraceEvents     []jsonEvent    `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// DefaultPID is the pid every implicit-clock event (StartSpan, Instant,
// CounterTrack) is serialized under; explicit-lane events (SpanAt and
// friends) pick their own pid, giving each simulated cluster node its own
// process group in the merged trace.
const DefaultPID = 1

// WriteJSON serializes the recorded events as a Chrome trace-event JSON
// object ({"traceEvents": [...]}). In the default pid group, lane 0 is
// named "orchestrator" and lane n > 0 "worker-<n-1>" via thread_name
// metadata events; other pid groups carry the names registered with
// SetProcessName.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	t.mu.Lock()
	events := make([]event, len(t.events))
	copy(events, t.events)
	dropped := t.dropped
	procName := make(map[int]string, len(t.procName)+1)
	for pid, name := range t.procName {
		procName[pid] = name
	}
	t.mu.Unlock()

	sort.SliceStable(events, func(i, j int) bool { return events[i].ts < events[j].ts })

	if _, ok := procName[DefaultPID]; !ok {
		procName[DefaultPID] = "harpgbdt"
	}
	doc := jsonTrace{DisplayTimeUnit: "ms"}
	type lane struct{ pid, tid int }
	lanes := map[lane]bool{}
	pids := map[int]bool{DefaultPID: true}
	for _, ev := range events {
		pid := int(ev.pid)
		if pid == 0 {
			pid = DefaultPID
		}
		lanes[lane{pid, int(ev.tid)}] = true
		pids[pid] = true
	}
	pidIDs := make([]int, 0, len(pids))
	for pid := range pids {
		pidIDs = append(pidIDs, pid)
	}
	sort.Ints(pidIDs)
	for _, pid := range pidIDs {
		name := procName[pid]
		if name == "" {
			name = "pid-" + strconv.Itoa(pid)
		}
		doc.TraceEvents = append(doc.TraceEvents, jsonEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": name},
		})
	}
	laneIDs := make([]lane, 0, len(lanes))
	for l := range lanes {
		laneIDs = append(laneIDs, l)
	}
	sort.Slice(laneIDs, func(i, j int) bool {
		if laneIDs[i].pid != laneIDs[j].pid {
			return laneIDs[i].pid < laneIDs[j].pid
		}
		return laneIDs[i].tid < laneIDs[j].tid
	})
	for _, l := range laneIDs {
		var name string
		switch {
		case l.pid != DefaultPID && l.tid == 0:
			name = "timeline"
		case l.tid == 0:
			name = "orchestrator"
		default:
			name = "worker-" + strconv.Itoa(l.tid-1)
		}
		doc.TraceEvents = append(doc.TraceEvents, jsonEvent{
			Name: "thread_name", Ph: "M", PID: l.pid, TID: l.tid,
			Args: map[string]any{"name": name},
		})
	}
	for _, ev := range events {
		pid := int(ev.pid)
		if pid == 0 {
			pid = DefaultPID
		}
		je := jsonEvent{
			Name: ev.name, Cat: ev.cat, Ph: string(ev.ph),
			TS: float64(ev.ts) / 1e3, PID: pid, TID: int(ev.tid),
		}
		if ev.ph == 'X' {
			je.Dur = float64(ev.dur) / 1e3
		}
		if ev.ph == 'i' {
			je.S = "t" // thread-scoped instant
		}
		if ev.ph == 's' || ev.ph == 'f' {
			je.ID = strconv.FormatUint(ev.flowID, 16)
			if ev.ph == 'f' {
				je.BP = "e" // bind the arrow head to the enclosing slice
			}
		}
		if ev.ph == 'C' && ev.tid > 0 {
			// Counter tracks are grouped by name in the viewer; suffix the
			// lane so each worker gets its own track.
			je.Name = ev.name + " worker-" + strconv.Itoa(int(ev.tid)-1)
		}
		if len(ev.args) > 0 {
			je.Args = make(map[string]any, len(ev.args))
			for _, a := range ev.args {
				je.Args[a.Key] = a.Value
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, je)
	}
	if dropped > 0 {
		doc.OtherData = map[string]any{"droppedEvents": dropped}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteFile writes the trace to path (chrome://tracing loadable).
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
