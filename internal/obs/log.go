package obs

// Structured logging with a stable key schema. Every log event a training
// component emits goes through obs.Logger: a thin log/slog wrapper that
// (1) writes JSON lines to an optional output writer, level-filtered, and
// (2) always records the event into the armed flight recorder, so the
// crash post-mortem contains the full recent event stream even when the
// configured output level was quiet.
//
// Keys are package constants (KeyRun, KeyNode, KeyRound, ...) and the
// harplint obshygiene rule requires every message and key literal at a
// Logger call site to be a compile-time constant — the log schema stays
// grep-able, like the metric and span schemas.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"sync/atomic"
	"time"
)

// The stable structured-log key schema. Components attach what they know:
// boost binds run+round, dist binds node+round, sched binds worker.
const (
	// KeyRun is the run id correlating every event of one training run.
	KeyRun = "run"
	// KeyNode is the simulated cluster node index.
	KeyNode = "node"
	// KeyRound is the boosting round (1-based in logs, like the CLI).
	KeyRound = "round"
	// KeyDepth is the tree depth a phase operated at.
	KeyDepth = "depth"
	// KeyPhase is the training phase (BuildHist, FindSplit, ApplySplit).
	KeyPhase = "phase"
	// KeyWorker is the pool worker index.
	KeyWorker = "worker"
	// KeyPoint is the fault-injection point name.
	KeyPoint = "point"
	// KeyComponent is the emitting subsystem (boost, dist, sched, fault).
	KeyComponent = "component"
	// KeyError carries an error string.
	KeyError = "err"
	// KeyReq is the serving request id within a run.
	KeyReq = "req"
	// KeyBatch is the serving batch id a request was coalesced into.
	KeyBatch = "batch"
	// KeyRows is the row count of a serving request or batch.
	KeyRows = "rows"
)

// Logger is a nil-safe structured logger. A nil *Logger (and the zero
// default) still records into the armed flight recorder; output goes to a
// writer only when configured via NewLogger/SetDefaultLogger.
type Logger struct {
	h     slog.Handler // nil = no output, flight recording only
	attrs []slog.Attr  // bound context from With
}

// NewLogger returns a logger writing JSON lines at or above level to w
// (nil w disables output; events still feed the flight recorder).
func NewLogger(w io.Writer, level slog.Leveler) *Logger {
	l := &Logger{}
	if w != nil {
		l.h = slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	}
	return l
}

// With returns a logger that adds the given key/value pairs to every
// event. Keys must be compile-time constant strings (enforced by the
// obshygiene lint rule). Nil-safe.
func (l *Logger) With(kv ...any) *Logger {
	attrs := argsToAttrs(kv)
	if len(attrs) == 0 {
		return l
	}
	nl := &Logger{}
	if l != nil {
		nl.h = l.h
		nl.attrs = append(append([]slog.Attr{}, l.attrs...), attrs...)
	} else {
		nl.attrs = attrs
	}
	return nl
}

// Debug logs at DEBUG level: chatty per-round / per-step events. They
// rarely reach the output writer but always land in the flight ring, so a
// crash dump shows the fine-grained tail.
func (l *Logger) Debug(msg string, kv ...any) { l.log(slog.LevelDebug, msg, kv) }

// Info logs at INFO level.
func (l *Logger) Info(msg string, kv ...any) { l.log(slog.LevelInfo, msg, kv) }

// Warn logs at WARN level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(slog.LevelWarn, msg, kv) }

// Error logs at ERROR level.
func (l *Logger) Error(msg string, kv ...any) { l.log(slog.LevelError, msg, kv) }

func (l *Logger) log(level slog.Level, msg string, kv []any) {
	fr := defaultFlight.Load()
	var h slog.Handler
	var bound []slog.Attr
	if l != nil {
		h = l.h
		bound = l.attrs
	}
	if fr == nil && (h == nil || !h.Enabled(context.Background(), level)) {
		return
	}
	attrs := argsToAttrs(kv)
	if fr != nil {
		m := make(map[string]any, len(bound)+len(attrs))
		for _, a := range bound {
			m[a.Key] = flightValue(a.Value)
		}
		for _, a := range attrs {
			m[a.Key] = flightValue(a.Value)
		}
		fr.Record(FlightEvent{
			TimeUnixNanos: time.Now().UnixNano(),
			Level:         level.String(),
			Msg:           msg,
			Attrs:         m,
		})
	}
	if h != nil && h.Enabled(context.Background(), level) {
		rec := slog.NewRecord(time.Now(), level, msg, 0)
		rec.AddAttrs(bound...)
		rec.AddAttrs(attrs...)
		_ = h.Handle(context.Background(), rec)
	}
}

// flightValue flattens a slog value for JSON-friendly flight storage.
func flightValue(v slog.Value) any {
	switch v.Kind() {
	case slog.KindInt64:
		return v.Int64()
	case slog.KindUint64:
		return v.Uint64()
	case slog.KindFloat64:
		return v.Float64()
	case slog.KindBool:
		return v.Bool()
	case slog.KindString:
		return v.String()
	case slog.KindDuration:
		return v.Duration().String()
	default:
		return fmt.Sprint(v.Any())
	}
}

// argsToAttrs converts alternating key/value arguments to attrs, slog
// style: a non-string key (a malformed call) becomes "!BADKEY", a
// trailing key with no value gets a "(MISSING)" marker.
func argsToAttrs(kv []any) []slog.Attr {
	if len(kv) == 0 {
		return nil
	}
	attrs := make([]slog.Attr, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = "!BADKEY"
		}
		var val any = "(MISSING)"
		if i+1 < len(kv) {
			val = kv[i+1]
		}
		attrs = append(attrs, slog.Any(key, val))
	}
	return attrs
}

// defaultLogger is the process-wide logger instrumentation sites use via
// L(). The zero default has no output writer but still feeds the flight
// recorder.
var defaultLogger atomic.Pointer[Logger]

// SetDefaultLogger installs the process-wide logger (nil restores the
// output-less default).
func SetDefaultLogger(l *Logger) { defaultLogger.Store(l) }

// L returns the process-wide logger. Never nil-dereferences: with no
// logger installed it returns nil, and every Logger method is nil-safe
// (flight recording still happens on the nil logger).
func L() *Logger { return defaultLogger.Load() }

// NewRunID returns a short unique id correlating the structured-log
// events of one training run. Generated here (not in boost) so the
// deterministic core packages stay free of clock reads.
func NewRunID() string {
	return strconv.FormatUint(uint64(time.Now().UnixNano())^uint64(os.Getpid())<<32, 36)
}
