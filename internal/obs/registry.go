package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are nil-safe so instrumented code can hold a nil handle
// when a registry rejects registration.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (a float64 behind atomic bit
// operations). Nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative buckets, Prometheus-style.
// Nil-safe.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// HistogramSnapshot is a point-in-time copy of a histogram's state:
// per-bucket (non-cumulative) counts aligned with Bounds, plus the
// overflow bucket at Counts[len(Bounds)].
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Snapshot copies the histogram's current state. Concurrent Observe
// calls may land between bucket reads (each bucket is individually
// consistent); quiesce writers first when exact totals matter.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start and multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, 0, n)
	v := start
	for i := 0; i < n; i++ {
		out = append(out, v)
		v *= factor
	}
	return out
}

// DefTimeBuckets are the default duration buckets (seconds): 100µs .. ~52s.
var DefTimeBuckets = ExpBuckets(1e-4, 2, 20)

// metricKind tags a registered metric for the TYPE exposition line.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// registered is one registry entry. Exactly one of counter/gauge/hist/fn
// is set; fn-backed entries are read at scrape time.
type registered struct {
	full, base, help string
	kind             metricKind
	counter          *Counter
	gauge            *Gauge
	hist             *Histogram
	fn               func() float64
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Metric names may carry a label suffix built with
// Labels ("x_total{phase=\"BuildHist\"}"); entries sharing a base name are
// grouped under one HELP/TYPE header. Registration is idempotent: asking
// for an existing name of the same kind returns the existing handle.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*registered
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{metrics: make(map[string]*registered)} }

// baseName strips a label suffix. Panics on names that would produce
// invalid exposition output (programmer error, caught in tests).
func baseName(full string) string {
	base := full
	if i := strings.IndexByte(full, '{'); i >= 0 {
		base = full[:i]
		if !strings.HasSuffix(full, "}") || i == 0 {
			panic(fmt.Sprintf("obs: malformed metric name %q", full))
		}
	}
	for i, r := range base {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", full))
		}
	}
	if base == "" {
		panic("obs: empty metric name")
	}
	return base
}

// Labels appends a label suffix to a metric name from alternating
// key/value arguments: Labels("x_total", "phase", "BuildHist") returns
// `x_total{phase="BuildHist"}`.
func Labels(name string, kv ...string) string {
	if len(kv) == 0 || len(kv)%2 != 0 {
		panic("obs: Labels needs alternating key/value pairs")
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(kv[i+1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// lookup returns the existing entry for name (enforcing kind) or creates
// one via mk.
func (r *Registry) lookup(name, help string, kind metricKind, mk func() *registered) *registered {
	base := baseName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, e.kind))
		}
		return e
	}
	e := mk()
	e.full, e.base, e.help, e.kind = name, base, help, kind
	r.metrics[name] = e
	return e
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	e := r.lookup(name, help, kindCounter, func() *registered { return &registered{counter: &Counter{}} })
	return e.counter
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.lookup(name, help, kindGauge, func() *registered { return &registered{gauge: &Gauge{}} })
	return e.gauge
}

// Histogram registers (or returns the existing) histogram under name with
// the given bucket upper bounds (nil selects DefTimeBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefTimeBuckets
	}
	e := r.lookup(name, help, kindHistogram, func() *registered { return &registered{hist: newHistogram(buckets)} })
	return e.hist
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time (for folding in externally accumulated totals, e.g. the profile
// phase breakdown). Re-registering the same name replaces the function, so
// successive training runs can rebind their breakdown.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, kindCounter, fn)
}

// GaugeFunc registers a gauge read from fn at scrape time. Re-registering
// replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, kindGauge, fn)
}

func (r *Registry) registerFunc(name, help string, kind metricKind, fn func() float64) {
	base := baseName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[name]; ok {
		if e.kind != kind || e.fn == nil {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s func (was non-func %s)", name, kind, e.kind))
		}
		e.fn = fn
		return
	}
	r.metrics[name] = &registered{full: name, base: base, help: help, kind: kind, fn: fn}
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), sorted by name for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	list := make([]*registered, 0, len(r.metrics))
	for _, e := range r.metrics {
		list = append(list, e)
	}
	r.mu.Unlock()
	sort.Slice(list, func(i, j int) bool {
		if list[i].base != list[j].base {
			return list[i].base < list[j].base
		}
		return list[i].full < list[j].full
	})
	bw := bufio.NewWriter(w)
	lastBase := ""
	for _, e := range list {
		if e.base != lastBase {
			if e.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", e.base, strings.ReplaceAll(e.help, "\n", " "))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", e.base, e.kind)
			lastBase = e.base
		}
		switch {
		case e.fn != nil:
			fmt.Fprintf(bw, "%s %s\n", e.full, formatFloat(e.fn()))
		case e.counter != nil:
			fmt.Fprintf(bw, "%s %d\n", e.full, e.counter.Value())
		case e.gauge != nil:
			fmt.Fprintf(bw, "%s %s\n", e.full, formatFloat(e.gauge.Value()))
		case e.hist != nil:
			writeHistogram(bw, e)
		}
	}
	return bw.Flush()
}

func writeHistogram(bw *bufio.Writer, e *registered) {
	h := e.hist
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(bw, "%s %d\n", suffixed(e.full, "_bucket", "le", formatFloat(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(bw, "%s %d\n", suffixed(e.full, "_bucket", "le", "+Inf"), cum)
	fmt.Fprintf(bw, "%s %s\n", suffixed(e.full, "_sum", "", ""), formatFloat(h.Sum()))
	fmt.Fprintf(bw, "%s %d\n", suffixed(e.full, "_count", "", ""), h.Count())
}

// suffixed inserts a name suffix before any label block and optionally
// appends one extra label: suffixed(`x{a="b"}`, "_bucket", "le", "0.5")
// returns `x_bucket{a="b",le="0.5"}`.
func suffixed(full, suffix, extraKey, extraVal string) string {
	name, labels := full, ""
	if i := strings.IndexByte(full, '{'); i >= 0 {
		name, labels = full[:i], full[i+1:len(full)-1]
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteString(suffix)
	if labels == "" && extraKey == "" {
		return sb.String()
	}
	sb.WriteByte('{')
	sb.WriteString(labels)
	if extraKey != "" {
		if labels != "" {
			sb.WriteByte(',')
		}
		sb.WriteString(extraKey)
		sb.WriteString(`="`)
		sb.WriteString(extraVal)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
