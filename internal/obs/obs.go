// Package obs is the observability layer of the trainer: a low-overhead
// span tracer emitting Chrome trace-event JSON (open chrome://tracing or
// https://ui.perfetto.dev and load the file), a stdlib-only metrics
// registry with Prometheus text exposition, and an optional HTTP server
// exposing /metrics, /progress and /debug/pprof.
//
// The package substitutes for the Intel VTune timeline views the paper
// uses: each traced span is one box on a per-worker lane, so the DP / MP /
// SYNC / ASYNC schedules of the engines can be seen rather than inferred
// from aggregate numbers.
//
// Instrumentation sites go through the package-level default observer so
// hot paths need no plumbing:
//
//	sp := obs.StartSpanTID("block-task", "hist-mp", worker+1)
//	... work ...
//	sp.End()
//
// When no observer (or no tracer) is installed, StartSpan costs one atomic
// pointer load, returns the zero Span, and allocates nothing; Span.End on
// the zero Span is a no-op. Metric handles (*Counter, *Gauge, *Histogram)
// are plain atomics and are nil-safe, so instrumented code never branches
// on "is observability on".
//
// The package is intentionally a leaf: it imports only the standard
// library and the (equally leaf) safeio writer the flight recorder dumps
// through, so every other internal package may import it freely.
package obs

import (
	"sync"
	"sync/atomic"
)

// Observer bundles the per-run observability state: an optional tracer, a
// metrics registry and a mutable progress snapshot served at /progress.
type Observer struct {
	// Tracer is nil until EnableTracing is called; a nil Tracer records
	// nothing and is safe to use.
	Tracer *Tracer
	// Registry collects the run's metrics. New() wires the process-wide
	// DefaultRegistry so pre-registered engine metrics are included.
	Registry *Registry

	mu       sync.Mutex
	progress map[string]any
}

// New returns an observer backed by the process-wide default registry
// (tracing disabled until EnableTracing).
func New() *Observer { return NewWith(DefaultRegistry()) }

// NewWith returns an observer backed by the given registry. Tests use this
// to isolate metric state from the default registry.
func NewWith(reg *Registry) *Observer {
	return &Observer{Registry: reg, progress: make(map[string]any)}
}

// EnableTracing attaches a fresh tracer recording up to maxEvents events
// (<= 0 selects DefaultMaxEvents) and returns it. Call SetDefault
// afterwards to route package-level StartSpan calls to it.
func (o *Observer) EnableTracing(maxEvents int) *Tracer {
	o.Tracer = NewTracer(maxEvents)
	return o.Tracer
}

// SetProgress stores one key of the live progress snapshot. Nil-safe.
func (o *Observer) SetProgress(key string, value any) {
	if o == nil {
		return
	}
	o.mu.Lock()
	if o.progress == nil {
		o.progress = make(map[string]any)
	}
	o.progress[key] = value
	o.mu.Unlock()
}

// UpdateProgress merges kv into the live progress snapshot. Nil-safe.
func (o *Observer) UpdateProgress(kv map[string]any) {
	if o == nil {
		return
	}
	o.mu.Lock()
	if o.progress == nil {
		o.progress = make(map[string]any)
	}
	for k, v := range kv {
		o.progress[k] = v
	}
	o.mu.Unlock()
}

// Progress returns a copy of the current progress snapshot.
func (o *Observer) Progress() map[string]any {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]any, len(o.progress))
	for k, v := range o.progress {
		out[k] = v
	}
	return out
}

// Package-level default observer. The tracer pointer is kept separately so
// the disabled fast path of StartSpan is exactly one atomic load.
var (
	defaultObserver atomic.Pointer[Observer]
	defaultTracer   atomic.Pointer[Tracer]
	defaultRegistry = NewRegistry()
)

// DefaultRegistry returns the process-wide metrics registry. It always
// exists, so packages may register their metrics at init time regardless
// of whether an observer is ever installed.
func DefaultRegistry() *Registry { return defaultRegistry }

// SetDefault installs o as the process default observer, routing
// package-level StartSpan calls to o.Tracer. Passing nil (or an observer
// without a tracer) disables tracing.
func SetDefault(o *Observer) {
	defaultObserver.Store(o)
	if o != nil {
		defaultTracer.Store(o.Tracer)
	} else {
		defaultTracer.Store(nil)
	}
}

// Default returns the installed default observer (nil when none).
func Default() *Observer { return defaultObserver.Load() }

// TracingEnabled reports whether package-level spans are being recorded.
func TracingEnabled() bool { return defaultTracer.Load() != nil }

// StartSpan opens a span on the orchestrator lane (tid 0) of the default
// tracer. When tracing is disabled it returns the zero Span without
// allocating.
func StartSpan(cat, name string) Span { return StartSpanTID(cat, name, 0) }

// StartSpanTID opens a span on the given timeline lane of the default
// tracer. By convention lane 0 is the orchestrator goroutine and worker w
// uses lane w+1.
func StartSpanTID(cat, name string, tid int) Span {
	t := defaultTracer.Load()
	if t == nil {
		return Span{}
	}
	return t.StartSpanTID(cat, name, tid)
}

// Instant records an instant event on the default tracer (a vertical mark
// in the timeline). No-op when tracing is disabled.
func Instant(cat, name string, tid int) {
	if t := defaultTracer.Load(); t != nil {
		t.Instant(cat, name, tid)
	}
}

// CounterTrack records a counter-track sample on the default tracer (a
// stacked series chart in the timeline). No-op when tracing is disabled.
func CounterTrack(cat, name string, tid int, args ...Arg) {
	if t := defaultTracer.Load(); t != nil {
		t.CounterTrack(cat, name, tid, args...)
	}
}

// SpanAt records an explicit-timestamp span on the given (pid, tid) lane
// of the default tracer. Simulated cluster nodes use this to place their
// virtual-clock timeline next to the real-time lanes in one merged trace.
func SpanAt(cat, name string, pid, tid int, ts, dur int64, args ...Arg) {
	if t := defaultTracer.Load(); t != nil {
		t.SpanAt(cat, name, pid, tid, ts, dur, args...)
	}
}

// InstantAt records an explicit-timestamp instant on the given (pid, tid)
// lane of the default tracer.
func InstantAt(cat, name string, pid, tid int, ts int64) {
	if t := defaultTracer.Load(); t != nil {
		t.InstantAt(cat, name, pid, tid, ts)
	}
}

// FlowStartAt opens a flow arrow (send side) on the default tracer.
func FlowStartAt(cat, name string, pid, tid int, ts int64, id uint64) {
	if t := defaultTracer.Load(); t != nil {
		t.FlowStartAt(cat, name, pid, tid, ts, id)
	}
}

// FlowEndAt terminates a flow arrow (receive side) on the default tracer.
func FlowEndAt(cat, name string, pid, tid int, ts int64, id uint64) {
	if t := defaultTracer.Load(); t != nil {
		t.FlowEndAt(cat, name, pid, tid, ts, id)
	}
}

// SetProcessName names a pid lane group on the default tracer (no-op when
// tracing is disabled).
func SetProcessName(pid int, name string) {
	if t := defaultTracer.Load(); t != nil {
		t.SetProcessName(pid, name)
	}
}
