package obs

import (
	"bytes"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestFlightRingRetainsTail(t *testing.T) {
	r := NewFlightRecorder(4, "")
	for i := 0; i < 10; i++ {
		r.Record(FlightEvent{Msg: "ev", Attrs: map[string]any{"i": i}})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for k, ev := range evs {
		if want := uint64(6 + k); ev.Seq != want {
			t.Errorf("event %d has seq %d, want %d", k, ev.Seq, want)
		}
		if got := ev.Attrs["i"].(int); got != 6+k {
			t.Errorf("event %d carries i=%v, want %d", k, got, 6+k)
		}
	}
	if r.Len() != 4 {
		t.Fatalf("Len %d, want 4", r.Len())
	}
}

func TestFlightRecordConcurrent(t *testing.T) {
	r := NewFlightRecorder(64, "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(FlightEvent{Msg: "ev"})
			}
		}()
	}
	wg.Wait()
	if got := r.cursor.Load(); got != 1600 {
		t.Fatalf("recorded %d events, want 1600", got)
	}
	if len(r.Events()) != 64 {
		t.Fatalf("retained %d, want 64", len(r.Events()))
	}
}

func TestFlightDumpRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.json")
	r := NewFlightRecorder(8, path)
	r.Record(FlightEvent{Msg: "round complete", Level: "INFO",
		Attrs: map[string]any{KeyRun: "abc", KeyRound: 3}})
	got, err := r.Dump("test-crash")
	if err != nil {
		t.Fatal(err)
	}
	if got != path {
		t.Fatalf("dump path %q, want %q", got, path)
	}
	doc, err := ReadFlightDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Reason != "test-crash" || doc.TotalEvents != 1 || len(doc.Events) != 1 {
		t.Fatalf("dump %+v", doc)
	}
	ev := doc.Events[0]
	if ev.Msg != "round complete" || ev.Attrs[KeyRun] != "abc" || ev.Attrs[KeyRound] != float64(3) {
		t.Fatalf("event %+v", ev)
	}

	// First dump wins: a later dump (outer recovery layer) must not
	// overwrite the one closest to the fault.
	r.Record(FlightEvent{Msg: "late"})
	if _, err := r.Dump("outer-layer"); err != nil {
		t.Fatal(err)
	}
	doc2, err := ReadFlightDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if doc2.Reason != "test-crash" {
		t.Fatalf("second dump overwrote the first: %q", doc2.Reason)
	}
}

func TestFlightDumpCorruptRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.json")
	r := NewFlightRecorder(8, path)
	r.Record(FlightEvent{Msg: "ev"})
	if _, err := r.Dump("x"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFlightDump(path); err == nil {
		t.Fatal("corrupt dump accepted")
	}
	// A file without a footer is rejected too.
	bare := filepath.Join(t.TempDir(), "bare.json")
	if err := os.WriteFile(bare, []byte(`{"reason":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFlightDump(bare); err == nil {
		t.Fatal("footer-less dump accepted")
	}
}

func TestArmedRecorderCapturesLoggerEvents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.json")
	ArmFlightRecorder(path, 16)
	defer ArmFlightRecorder("", 0)

	// Even the nil default logger must feed the armed recorder, and DEBUG
	// events land in the ring regardless of any output level.
	L().Info("train start", KeyRun, "r1")
	L().With(KeyRun, "r1", KeyNode, 2).Debug("round complete", KeyRound, 7)
	if got := Flight().Len(); got != 2 {
		t.Fatalf("recorder holds %d events, want 2", got)
	}
	if _, err := DumpFlight("test"); err != nil {
		t.Fatal(err)
	}
	doc, err := ReadFlightDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Events) != 2 {
		t.Fatalf("dump has %d events, want 2", len(doc.Events))
	}
	ev := doc.Events[1]
	if ev.Attrs[KeyRun] != "r1" || ev.Attrs[KeyNode] != float64(2) || ev.Attrs[KeyRound] != float64(7) {
		t.Fatalf("bound keys lost: %+v", ev)
	}
	if ev.Level != "DEBUG" {
		t.Fatalf("level %q, want DEBUG", ev.Level)
	}
}

func TestDumpFlightDisarmedNoop(t *testing.T) {
	ArmFlightRecorder("", 0)
	path, err := DumpFlight("nothing armed")
	if err != nil || path != "" {
		t.Fatalf("disarmed dump: path %q err %v", path, err)
	}
	L().Info("dropped on the floor") // must not panic with nothing armed
}

func TestLoggerOutputJSON(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, slog.LevelInfo)
	lg.Debug("hidden", KeyRound, 1)
	lg.With(KeyRun, "r9").Warn("node died", KeyNode, 3)
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("DEBUG leaked through INFO level: %s", out)
	}
	if !strings.Contains(out, `"msg":"node died"`) ||
		!strings.Contains(out, `"run":"r9"`) || !strings.Contains(out, `"node":3`) {
		t.Fatalf("output missing structured fields: %s", out)
	}
}

func TestLoggerMalformedPairs(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, slog.LevelInfo)
	lg.Info("odd", KeyRound) // trailing key without value
	if !strings.Contains(buf.String(), "(MISSING)") {
		t.Fatalf("missing-value marker absent: %s", buf.String())
	}
	buf.Reset()
	lg.Info("badkey", 42, "v")
	if !strings.Contains(buf.String(), "!BADKEY") {
		t.Fatalf("bad-key marker absent: %s", buf.String())
	}
}

func TestNewRunIDUnique(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if a == "" || a == b {
		t.Fatalf("run ids %q, %q", a, b)
	}
}

func TestNilLoggerSafe(t *testing.T) {
	var lg *Logger
	lg.Info("msg", KeyRound, 1)
	lg.Error("msg", KeyError, fmt.Errorf("boom"))
	lg2 := lg.With(KeyRun, "x")
	lg2.Warn("msg")
}
