package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServerEndpoints(t *testing.T) {
	o := NewWith(NewRegistry())
	o.Registry.Counter("rows_total", "Rows.").Add(7)
	o.EnableTracing(64)
	o.Tracer.Instant("cat", "mark", 0)
	o.SetProgress("round", 12)

	s, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "rows_total 7\n") {
		t.Fatalf("/metrics: code %d body %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content-type %q", ct)
	}

	code, body, _ = get(t, base+"/progress")
	var progress map[string]any
	if code != http.StatusOK || json.Unmarshal([]byte(body), &progress) != nil {
		t.Fatalf("/progress: code %d body %q", code, body)
	}
	if progress["round"] != float64(12) {
		t.Fatalf("/progress round = %v", progress["round"])
	}

	code, body, _ = get(t, base+"/trace")
	var doc map[string]any
	if code != http.StatusOK || json.Unmarshal([]byte(body), &doc) != nil {
		t.Fatalf("/trace: code %d body %q", code, body)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("/trace missing traceEvents")
	}

	code, body, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline: code %d", code)
	}

	code, body, _ = get(t, base+"/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: code %d body %q", code, body)
	}
	if code, _, _ = get(t, base+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path returned %d", code)
	}
}

func TestServerTraceDisabled(t *testing.T) {
	s, err := Serve("127.0.0.1:0", NewWith(NewRegistry()))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer s.Close()
	code, _, _ := get(t, "http://"+s.Addr()+"/trace")
	if code != http.StatusNotFound {
		t.Fatalf("/trace without tracer returned %d, want 404", code)
	}
}
