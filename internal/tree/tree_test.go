package tree

import (
	"bytes"
	"math"
	"testing"

	"harpgbdt/internal/dataset"
)

// buildSampleTree: root splits on feature 0 at bin 2 (value 2.0,
// default left); left child is a leaf, right child splits on feature 1.
func buildSampleTree() *Tree {
	t := New(10, 20, 100)
	l, r := t.AddChildren(0, 0, 2, 2.0, true, 5.0)
	t.Nodes[l].SumG, t.Nodes[l].SumH, t.Nodes[l].Count = 4, 8, 40
	t.Nodes[l].Weight = -0.5
	t.Nodes[r].SumG, t.Nodes[r].SumH, t.Nodes[r].Count = 6, 12, 60
	rl, rr := t.AddChildren(r, 1, 5, 5.0, false, 2.0)
	t.Nodes[rl].SumG, t.Nodes[rl].SumH, t.Nodes[rl].Count = 2, 4, 20
	t.Nodes[rl].Weight = 0.25
	t.Nodes[rr].SumG, t.Nodes[rr].SumH, t.Nodes[rr].Count = 4, 8, 40
	t.Nodes[rr].Weight = 1.5
	return t
}

func TestTreeStructure(t *testing.T) {
	tr := buildSampleTree()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 5 {
		t.Fatalf("nodes %d", tr.NumNodes())
	}
	if tr.NumLeaves() != 3 {
		t.Fatalf("leaves %d", tr.NumLeaves())
	}
	if tr.MaxDepth() != 2 {
		t.Fatalf("depth %d", tr.MaxDepth())
	}
	if tr.Root().IsLeaf() {
		t.Fatal("root should be internal")
	}
}

func TestPredictRowRaw(t *testing.T) {
	tr := buildSampleTree()
	cases := []struct {
		row  []float32
		want float64
	}{
		{[]float32{1.0, 0}, -0.5},      // f0 <= 2 => left leaf
		{[]float32{3.0, 4.0}, 0.25},    // right, f1 <= 5 => rl
		{[]float32{3.0, 9.0}, 1.5},     // right, f1 > 5 => rr
		{[]float32{nan32(), 0}, -0.5},  // missing f0, default left
		{[]float32{3.0, nan32()}, 1.5}, // missing f1, default right
		{[]float32{2.0, 0}, -0.5},      // boundary goes left
	}
	for i, c := range cases {
		if got := tr.PredictRowRaw(c.row); got != c.want {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
}

func TestPredictBinnedMatchesRaw(t *testing.T) {
	tr := buildSampleTree()
	// bins: f0 bin <= 2 goes left; f1 bin <= 5 goes left.
	cases := []struct {
		bins []uint8
		want float64
	}{
		{[]uint8{0, 0}, -0.5},
		{[]uint8{2, 0}, -0.5},
		{[]uint8{3, 5}, 0.25},
		{[]uint8{3, 6}, 1.5},
		{[]uint8{dataset.MissingBin, 0}, -0.5},
		{[]uint8{3, dataset.MissingBin}, 1.5},
	}
	for i, c := range cases {
		leaf := tr.PredictRowBinned(c.bins)
		if got := tr.Nodes[leaf].Weight; got != c.want {
			t.Errorf("case %d: leaf %d weight %v want %v", i, leaf, got, c.want)
		}
	}
}

func TestValidateCatchesBrokenTrees(t *testing.T) {
	// Broken count sum.
	tr := buildSampleTree()
	tr.Nodes[1].Count = 99
	if err := tr.Validate(); err == nil {
		t.Fatal("broken counts passed")
	}
	// Broken parent link.
	tr = buildSampleTree()
	tr.Nodes[1].Parent = 2
	if err := tr.Validate(); err == nil {
		t.Fatal("broken parent passed")
	}
	// Broken depth.
	tr = buildSampleTree()
	tr.Nodes[1].Depth = 5
	if err := tr.Validate(); err == nil {
		t.Fatal("broken depth passed")
	}
	// Broken G sum.
	tr = buildSampleTree()
	tr.Nodes[1].SumG = 1000
	if err := tr.Validate(); err == nil {
		t.Fatal("broken G sum passed")
	}
	// Empty tree.
	if err := (&Tree{}).Validate(); err == nil {
		t.Fatal("empty tree passed")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := buildSampleTree()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr2.NumNodes() != tr.NumNodes() {
		t.Fatal("node count changed")
	}
	for i := range tr.Nodes {
		if tr.Nodes[i] != tr2.Nodes[i] {
			t.Fatalf("node %d changed: %+v vs %+v", i, tr.Nodes[i], tr2.Nodes[i])
		}
	}
	if _, err := ReadJSON(bytes.NewReader([]byte("{bad json"))); err == nil {
		t.Fatal("bad json accepted")
	}
}

func TestSplitParamsWeightAndGain(t *testing.T) {
	p := SplitParams{Lambda: 1}
	if got := p.CalcWeight(2, 3); got != -0.5 {
		t.Fatalf("weight %v", got)
	}
	if got := p.CalcTerm(2, 3); got != 1 {
		t.Fatalf("term %v", got)
	}
	// Gain formula check: GL=2,HL=3, GR=-2,HR=3, λ=1, γ=0:
	// 0.5*(4/4 + 4/4 - 0/7) = 1.
	if got := p.SplitGain(2, 3, -2, 3); math.Abs(got-1) > 1e-12 {
		t.Fatalf("gain %v", got)
	}
	p.Gamma = 0.25
	if got := p.SplitGain(2, 3, -2, 3); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("gain with gamma %v", got)
	}
}

func TestSplitGainSymmetry(t *testing.T) {
	p := SplitParams{Lambda: 0.5, Gamma: 0.1}
	a := p.SplitGain(1.5, 2, -3, 4)
	b := p.SplitGain(-3, 4, 1.5, 2)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("gain not symmetric: %v vs %v", a, b)
	}
}

func TestSplitGainNonNegativeForPureSplit(t *testing.T) {
	// Separating opposite-sign gradients is always a gain at γ=0.
	p := SplitParams{Lambda: 1}
	if g := p.SplitGain(5, 3, -5, 3); g <= 0 {
		t.Fatalf("pure split gain %v", g)
	}
	// Splitting identical halves cannot gain: with λ>0 the regularizer
	// strictly penalizes it.
	if g := p.SplitGain(2, 2, 2, 2); g >= 0 {
		t.Fatalf("identical split gain %v should be negative under λ>0", g)
	}
}

func TestAdmissible(t *testing.T) {
	p := SplitParams{MinChildWeight: 1}
	if !p.Admissible(1, 1) {
		t.Fatal("boundary should be admissible")
	}
	if p.Admissible(0.5, 2) || p.Admissible(2, 0.5) {
		t.Fatal("below min child weight accepted")
	}
}

func TestSplitInfoBetter(t *testing.T) {
	a := SplitInfo{Feature: 1, Bin: 3, Gain: 2}
	b := SplitInfo{Feature: 2, Bin: 1, Gain: 1}
	if !a.Better(b) || b.Better(a) {
		t.Fatal("gain ordering")
	}
	// Tie on gain: lower feature wins.
	c := SplitInfo{Feature: 0, Bin: 9, Gain: 2}
	if !c.Better(a) || a.Better(c) {
		t.Fatal("feature tie-break")
	}
	// Tie on gain+feature: lower bin wins.
	d := SplitInfo{Feature: 1, Bin: 1, Gain: 2}
	if !d.Better(a) || a.Better(d) {
		t.Fatal("bin tie-break")
	}
	if a.Better(a) {
		t.Fatal("self comparison")
	}
	inv := InvalidSplit()
	if inv.Valid() {
		t.Fatal("invalid split is valid")
	}
	if !a.Better(inv) {
		t.Fatal("any valid split beats invalid")
	}
}

func TestDefaultSplitParams(t *testing.T) {
	p := DefaultSplitParams()
	if p.Lambda != 1 || p.Gamma != 1 || p.MinChildWeight != 1 {
		t.Fatalf("defaults %+v (paper: λ=1 γ=1 mcw=1)", p)
	}
}

func TestZeroGainSplitInvalid(t *testing.T) {
	s := SplitInfo{Feature: 0, Gain: 0}
	if s.Valid() {
		t.Fatal("zero-gain split should be invalid")
	}
}

func nan32() float32 {
	return float32(math.NaN())
}
