// Package tree provides the decision-tree model structure shared by all
// training engines: nodes, split records, the regularized gain/weight math
// of the paper's Eq. (2) and (3), row-set partitioning (ApplySplit), single
// and batch prediction, and JSON serialization.
package tree

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"harpgbdt/internal/dataset"
)

// NoNode marks an absent child/parent link.
const NoNode = int32(-1)

// Node is one tree node. Leaves have Left == Right == NoNode and carry the
// output Weight; internal nodes carry the split (Feature, SplitBin,
// SplitValue, DefaultLeft) and the Gain realized by the split.
type Node struct {
	ID          int32   `json:"id"`
	Parent      int32   `json:"parent"`
	Left        int32   `json:"left"`
	Right       int32   `json:"right"`
	Feature     int32   `json:"feature"`
	SplitBin    uint8   `json:"split_bin"`
	SplitValue  float32 `json:"split_value"`
	DefaultLeft bool    `json:"default_left"`
	Weight      float64 `json:"weight"`
	Gain        float64 `json:"gain"`
	SumG        float64 `json:"sum_g"`
	SumH        float64 `json:"sum_h"`
	Count       int32   `json:"count"`
	Depth       int32   `json:"depth"`
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Left == NoNode }

// Tree is a single regression tree over binned features.
type Tree struct {
	Nodes []Node `json:"nodes"`
}

// New returns a tree containing only a root leaf with the given statistics.
func New(sumG, sumH float64, count int32) *Tree {
	return &Tree{Nodes: []Node{{
		ID: 0, Parent: NoNode, Left: NoNode, Right: NoNode,
		Feature: -1, SumG: sumG, SumH: sumH, Count: count, Depth: 0,
	}}}
}

// Root returns the root node.
func (t *Tree) Root() *Node { return &t.Nodes[0] }

// Node returns node id (panics when out of range).
func (t *Tree) Node(id int32) *Node { return &t.Nodes[id] }

// NumNodes returns the total node count.
func (t *Tree) NumNodes() int { return len(t.Nodes) }

// NumLeaves counts leaf nodes.
func (t *Tree) NumLeaves() int {
	n := 0
	for i := range t.Nodes {
		if t.Nodes[i].IsLeaf() {
			n++
		}
	}
	return n
}

// MaxDepth returns the depth of the deepest node (root = 0).
func (t *Tree) MaxDepth() int {
	d := int32(0)
	for i := range t.Nodes {
		if t.Nodes[i].Depth > d {
			d = t.Nodes[i].Depth
		}
	}
	return int(d)
}

// AddChildren turns leaf id into an internal node with the given split and
// appends two child leaves, returning their ids. The caller fills the
// children's statistics and weights.
func (t *Tree) AddChildren(id int32, feature int32, splitBin uint8, splitValue float32, defaultLeft bool, gain float64) (left, right int32) {
	left = int32(len(t.Nodes))
	right = left + 1
	parent := &t.Nodes[id]
	depth := parent.Depth + 1
	parent.Left, parent.Right = left, right
	parent.Feature = feature
	parent.SplitBin = splitBin
	parent.SplitValue = splitValue
	parent.DefaultLeft = defaultLeft
	parent.Gain = gain
	t.Nodes = append(t.Nodes,
		Node{ID: left, Parent: id, Left: NoNode, Right: NoNode, Feature: -1, Depth: depth},
		Node{ID: right, Parent: id, Left: NoNode, Right: NoNode, Feature: -1, Depth: depth},
	)
	return left, right
}

// PredictRowBinned walks the tree for one row of binned features and returns
// the leaf node id.
func (t *Tree) PredictRowBinned(bins []uint8) int32 {
	id := int32(0)
	for {
		n := &t.Nodes[id]
		if n.IsLeaf() {
			return id
		}
		b := bins[n.Feature]
		switch {
		case b == dataset.MissingBin:
			if n.DefaultLeft {
				id = n.Left
			} else {
				id = n.Right
			}
		case b <= n.SplitBin:
			id = n.Left
		default:
			id = n.Right
		}
	}
}

// PredictRowRaw walks the tree for one row of raw feature values (NaN =
// missing) and returns the leaf weight.
func (t *Tree) PredictRowRaw(values []float32) float64 {
	id := int32(0)
	for {
		n := &t.Nodes[id]
		if n.IsLeaf() {
			return n.Weight
		}
		v := values[n.Feature]
		switch {
		case v != v: // missing
			if n.DefaultLeft {
				id = n.Left
			} else {
				id = n.Right
			}
		case v <= n.SplitValue:
			id = n.Left
		default:
			id = n.Right
		}
	}
}

// Validate checks the structural invariants of the tree: parent/child links
// consistent, depths consistent, statistics of children summing to parents
// (within floating tolerance), exactly one root.
func (t *Tree) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("tree: empty")
	}
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.ID != int32(i) {
			return fmt.Errorf("tree: node %d has ID %d", i, n.ID)
		}
		if n.IsLeaf() != (n.Right == NoNode) {
			return fmt.Errorf("tree: node %d has one child", i)
		}
		if n.IsLeaf() {
			continue
		}
		for _, c := range []int32{n.Left, n.Right} {
			if c <= 0 || int(c) >= len(t.Nodes) {
				return fmt.Errorf("tree: node %d child %d out of range", i, c)
			}
			ch := &t.Nodes[c]
			if ch.Parent != n.ID {
				return fmt.Errorf("tree: node %d parent link broken (child %d)", i, c)
			}
			if ch.Depth != n.Depth+1 {
				return fmt.Errorf("tree: node %d depth inconsistent (child %d)", i, c)
			}
		}
		l, r := &t.Nodes[n.Left], &t.Nodes[n.Right]
		if n.Count != l.Count+r.Count {
			return fmt.Errorf("tree: node %d count %d != %d+%d", i, n.Count, l.Count, r.Count)
		}
		if math.Abs(n.SumG-(l.SumG+r.SumG)) > 1e-6*(1+math.Abs(n.SumG)) {
			return fmt.Errorf("tree: node %d G sum mismatch", i)
		}
		if math.Abs(n.SumH-(l.SumH+r.SumH)) > 1e-6*(1+math.Abs(n.SumH)) {
			return fmt.Errorf("tree: node %d H sum mismatch", i)
		}
	}
	return nil
}

// WriteJSON serializes the tree.
func (t *Tree) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// ReadJSON deserializes a tree written by WriteJSON.
func ReadJSON(r io.Reader) (*Tree, error) {
	var t Tree
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, err
	}
	return &t, nil
}
