package tree

import "math"

// SplitParams are the regularization hyper-parameters of the paper's
// objective (Eq. 1-3): Lambda is the L2 weight penalty λ, Gamma the
// per-leaf penalty γ, and MinChildWeight the minimum hessian sum either
// child must retain for a split to be admissible.
type SplitParams struct {
	Lambda         float64
	Gamma          float64
	MinChildWeight float64
}

// DefaultSplitParams mirror the paper's experimental settings
// (γ = 1, λ = 1, min_child_weight = 1).
func DefaultSplitParams() SplitParams {
	return SplitParams{Lambda: 1, Gamma: 1, MinChildWeight: 1}
}

// CalcWeight returns the optimal leaf weight w* = -G / (H + λ) (Eq. 2).
func (p SplitParams) CalcWeight(g, h float64) float64 {
	return -g / (h + p.Lambda)
}

// CalcTerm returns the objective contribution G² / (H + λ) of a node.
func (p SplitParams) CalcTerm(g, h float64) float64 {
	return g * g / (h + p.Lambda)
}

// SplitGain returns the loss reduction of splitting ⟨G,H⟩ into the given
// left/right parts (Eq. 3): ½[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ.
func (p SplitParams) SplitGain(gl, hl, gr, hr float64) float64 {
	return 0.5*(p.CalcTerm(gl, hl)+p.CalcTerm(gr, hr)-p.CalcTerm(gl+gr, hl+hr)) - p.Gamma
}

// Admissible reports whether both children satisfy the minimum hessian
// weight constraint.
func (p SplitParams) Admissible(hl, hr float64) bool {
	return hl >= p.MinChildWeight && hr >= p.MinChildWeight
}

// SplitInfo records the best split found for one node.
type SplitInfo struct {
	Feature     int32
	Bin         uint8
	DefaultLeft bool
	Gain        float64
	LeftG       float64
	LeftH       float64
	RightG      float64
	RightH      float64
}

// Valid reports whether the split is usable (positive gain and a real
// feature).
func (s SplitInfo) Valid() bool { return s.Feature >= 0 && s.Gain > 0 }

// Better reports whether s beats o, with deterministic tie-breaking on
// (feature, bin) so parallel split searches agree regardless of scan order.
func (s SplitInfo) Better(o SplitInfo) bool {
	if s.Gain != o.Gain {
		return s.Gain > o.Gain
	}
	if s.Feature != o.Feature {
		return s.Feature < o.Feature
	}
	return s.Bin < o.Bin
}

// InvalidSplit is the sentinel "no split found" value.
func InvalidSplit() SplitInfo {
	return SplitInfo{Feature: -1, Gain: math.Inf(-1)}
}
