package core

import (
	"testing"

	"harpgbdt/internal/grow"
	"harpgbdt/internal/tree"
)

// TestVirtualBarrierModesMatchReal: the simulated machine executes the same
// task decomposition, so with dyadic gradients every barrier mode must grow
// the identical tree in virtual and real mode.
func TestVirtualBarrierModesMatchReal(t *testing.T) {
	ds := testDataset(t, 2500, 10)
	grad := dyadicGradients(2500, 61)
	for _, mode := range []Mode{DP, MP, Sync} {
		cfg := Config{Mode: mode, K: 8, Growth: grow.Leafwise, TreeSize: 6,
			FeatureBlockSize: 4, NodeBlockSize: 4, UseMemBuf: true,
			Params: tree.DefaultSplitParams()}
		real := buildWith(t, cfg, ds, grad)
		cfg.Virtual = true
		cfg.Workers = 32
		virt := buildWith(t, cfg, ds, grad)
		if !treesEquivalent(real, virt) {
			t.Errorf("mode %v: virtual machine built a different tree", mode)
		}
	}
}

func TestVirtualAsyncTreeValid(t *testing.T) {
	ds := testDataset(t, 4000, 10)
	grad := dyadicGradients(4000, 67)
	b, err := NewBuilder(Config{Mode: Async, K: 32, Growth: grow.Leafwise, TreeSize: 7,
		FeatureBlockSize: 4, NodeBlockSize: 4, UseMemBuf: true, Virtual: true, Workers: 32,
		Params: tree.DefaultSplitParams()}, ds)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := b.BuildTree(grad)
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if bt.Tree.NumLeaves() > 64 {
		t.Fatalf("leaf budget exceeded: %d", bt.Tree.NumLeaves())
	}
	for i := 0; i < ds.NumRows(); i += 61 {
		if want := bt.Tree.PredictRowBinned(ds.Binned.Row(i)); bt.LeafOf[i] != want {
			t.Fatalf("row %d leaf mismatch", i)
		}
	}
	// The simulation must have produced virtual timing.
	if b.Pool().VirtualNanos() <= 0 {
		t.Fatal("no virtual time recorded")
	}
	st := b.Pool().Stats()
	if st.SerialNanos <= 0 || st.WallNanos <= 0 {
		t.Fatalf("virtual stats missing: %+v", st)
	}
}

// TestVirtualAsyncDeterministicStructure: the discrete-event ASYNC
// simulation is structurally deterministic — two runs on the same gradients
// must grow the same number of leaves and the same root split (per-node
// timing noise may still reorder low-gain pops, so we don't require full
// equality).
func TestVirtualAsyncDeterministicStructure(t *testing.T) {
	ds := testDataset(t, 3000, 8)
	grad := dyadicGradients(3000, 71)
	build := func() *tree.Tree {
		return buildWith(t, Config{Mode: Async, K: 16, Growth: grow.Leafwise, TreeSize: 6,
			FeatureBlockSize: 4, UseMemBuf: true, Virtual: true, Workers: 16,
			Params: tree.DefaultSplitParams()}, ds, grad)
	}
	a, b := build(), build()
	if a.NumLeaves() != b.NumLeaves() {
		t.Fatalf("leaf counts differ: %d vs %d", a.NumLeaves(), b.NumLeaves())
	}
	ar, br := a.Root(), b.Root()
	if ar.Feature != br.Feature || ar.SplitBin != br.SplitBin {
		t.Fatal("root split differs between identical runs")
	}
}

// TestVirtualSpeedupOverWorkers: the simulated machine must express real
// parallelism. Comparing simulated wall time against the measured serial
// execution time WITHIN one run makes the assertion immune to host load
// (both numbers inflate together under contention).
func TestVirtualSpeedupOverWorkers(t *testing.T) {
	ds := testDataset(t, 20000, 16)
	grad := dyadicGradients(20000, 73)
	speedup := func(workers int) float64 {
		b, err := NewBuilder(Config{Mode: MP, K: 32, Growth: grow.Leafwise, TreeSize: 7,
			FeatureBlockSize: 2, NodeBlockSize: 1, UseMemBuf: true,
			Virtual: true, Workers: workers, Params: tree.DefaultSplitParams()}, ds)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.BuildTree(grad); err != nil {
			t.Fatal(err)
		}
		st := b.Pool().Stats()
		return float64(st.SerialNanos) / float64(b.Pool().VirtualNanos())
	}
	if s1 := speedup(1); s1 > 1.2 {
		t.Fatalf("1 virtual worker shows %1.2fx speedup over serial", s1)
	}
	// A heavily loaded host can stall one serial task mid-measurement and
	// put the whole stall on a single region's critical path, so allow a
	// few attempts; an unloaded machine measures ~2.9x on this config.
	best := 0.0
	for attempt := 0; attempt < 4; attempt++ {
		if s8 := speedup(8); s8 > best {
			best = s8
		}
		if best >= 2 {
			return
		}
	}
	t.Fatalf("8 virtual workers only %1.2fx faster than serial", best)
}
