package core

import (
	"runtime"

	"harpgbdt/internal/engine"
	"harpgbdt/internal/gh"
	"harpgbdt/internal/grow"
	"harpgbdt/internal/invariant"
	"harpgbdt/internal/obs"
	"harpgbdt/internal/perf"
	"harpgbdt/internal/profile"
	"harpgbdt/internal/sched"
	"harpgbdt/internal/tree"
)

// asyncYield, when non-nil, is called by every ASYNC worker at the named
// schedule points ("loop", "claimed", "grafted", "publish", "exit"), all
// of them outside the spin-mutex critical sections. It is the seam the
// deterministic schedule checker (schedcheck_test.go) uses to drive the
// worker loop through enumerated interleavings with sched.Choreo; in
// production it is nil and the calls are two-instruction no-ops.
var asyncYield func(worker int, point string)

func yieldAsync(worker int, point string) {
	if asyncYield != nil {
		asyncYield(worker, point)
	}
}

// buildAsync runs the loosely-coupled TopK mode: a short barrier-mode
// warm-up until the queue holds enough candidates to feed every worker,
// then a single parallel region in which each worker repeatedly pops a
// candidate from the spin-mutex-guarded shared queue and processes the
// whole node (partition, child histograms, splits) privately. The only
// barrier is at the end of the tree; this is the paper's "mix mode
// (X, node parallelism, X)".
//
// The spin mutex guards exactly three structures: the candidate queue, the
// tree skeleton (st.t) and the node-state table (st.nodes), plus the
// leaves/outstanding counters. Critical sections are kept to loads, stores
// and the guarded-structure calls themselves — metric updates, cut lookups,
// weight math, node-state allocation and histogram recycling all happen
// outside the lock (harplint's spinscope rule enforces this; the remaining
// in-section calls are annotated individually).
func (b *Builder) buildAsync(st *buildState) {
	maxLeaves := b.cfg.MaxLeaves()
	workers := b.pool.Workers()
	// Beginning phase: node parallelism cannot use the cores while the
	// queue is shorter than the worker count, so run barrier-mode batches
	// (buildHistBatch picks DP for small batches).
	for st.queue.Len() > 0 && st.queue.Len() < workers && st.leaves < maxLeaves {
		k := b.cfg.EffectiveK()
		if rem := maxLeaves - st.leaves; k > rem {
			k = rem
		}
		batch := st.queue.PopBatch(k)
		b.processBatch(st, batch)
		b.cWarmup.Inc()
	}
	if st.queue.Len() == 0 || st.leaves >= maxLeaves {
		b.drainQueue(st)
		return
	}

	var mu sched.SpinMutex
	outstanding := 0
	b.pool.RunWorkers(func(worker int) {
		// The cursor attributes this worker's whole span by construction:
		// each transition flushes the elapsed interval into the previous
		// state, so the per-worker state sums equal the loop's wall time.
		// Nil (profiling off) makes every call a no-op.
		cur := b.acc.Cursor(worker)
		cur.Begin(perf.Work)
		defer cur.End()
		defer yieldAsync(worker, "exit")
		for {
			yieldAsync(worker, "loop")
			// Section 1: claim a candidate (or detect completion). Nothing
			// but queue/counter/table access happens while the lock is held.
			var toRelease []*nodeState
			cur.To(perf.SpinWait)
			mu.Lock()
			if st.leaves >= maxLeaves {
				for {
					c, ok := st.queue.Pop() //harplint:ignore spinscope -- the queue is the guarded structure
					if !ok {
						break
					}
					toRelease = append(toRelease, st.nodes[c.NodeID]) //harplint:ignore spinscope -- drain runs once per worker at tree end, not on the hot path
				}
				mu.Unlock()
				// Histogram recycling takes the pool's own spin lock; doing
				// it here keeps the two spin locks from nesting.
				for _, ns := range toRelease {
					b.releaseHist(ns)
				}
				return
			}
			c, ok := st.queue.Pop() //harplint:ignore spinscope -- the queue is the guarded structure
			if !ok {
				done := outstanding == 0
				mu.Unlock()
				if done {
					return
				}
				b.cQueueEmpty.Inc()
				cur.To(perf.QueueWait)
				runtime.Gosched()
				continue
			}
			outstanding++
			st.leaves++
			parent := st.nodes[c.NodeID]
			qlen := st.queue.Len() //harplint:ignore spinscope -- the queue is the guarded structure
			mu.Unlock()
			cur.To(perf.Work)
			yieldAsync(worker, "claimed")

			// Between sections: everything that needs no shared state.
			// parent's fields are stable — they were fully written before
			// the candidate was pushed (the queue mutex orders the two).
			mNodesSplit.Inc()
			b.cAsyncNodes.Inc()
			mQueueDepth.Set(float64(qlen))
			s := parent.split
			upper := b.ds.Cuts.UpperBound(int(s.Feature), s.Bin)
			left := &nodeState{sum: gh.Pair{G: s.LeftG, H: s.LeftH}, split: tree.InvalidSplit()}
			right := &nodeState{sum: gh.Pair{G: s.RightG, H: s.RightH}, split: tree.InvalidSplit()}
			childDepth := c.Depth + 1

			// Section 2: graft the children into the shared tree skeleton
			// and node table.
			cur.To(perf.SpinWait)
			mu.Lock()
			l, r := st.t.AddChildren(c.NodeID, s.Feature, s.Bin, upper, s.DefaultLeft, s.Gain) //harplint:ignore spinscope -- the tree skeleton is the guarded structure
			st.nodes = append(st.nodes, left, right)                                           //harplint:ignore spinscope -- the node table is the guarded structure; append is amortized
			mu.Unlock()
			cur.To(perf.Work)
			yieldAsync(worker, "grafted")

			nsp := obs.StartSpanTID("node", "ProcessNode", worker+1)
			b.asyncProcessNode(st, parent, left, right, childDepth, cur)
			nsp.End()

			// Weight math and split validity happen before re-acquiring the
			// lock; the child sums and splits were sealed by
			// asyncProcessNode above. Arrays, not slices: no allocation.
			children := [2]*nodeState{left, right}
			ids := [2]int32{l, r}
			weights := [2]float64{
				b.cfg.Params.CalcWeight(left.sum.G, left.sum.H),
				b.cfg.Params.CalcWeight(right.sum.G, right.sum.H),
			}
			valid := [2]bool{left.split.Valid(), right.split.Valid()}

			// Section 3: publish the finished children and re-queue the
			// splittable ones.
			yieldAsync(worker, "publish")
			toRelease = toRelease[:0]
			cur.To(perf.SpinWait)
			mu.Lock()
			for i, ns := range children {
				tn := &st.t.Nodes[ids[i]]
				tn.SumG, tn.SumH, tn.Count = ns.sum.G, ns.sum.H, ns.count
				tn.Weight = weights[i]
				if valid[i] {
					st.queue.Push(grow.Candidate{NodeID: ids[i], Gain: ns.split.Gain, Depth: childDepth, Count: ns.count}) //harplint:ignore spinscope -- the queue is the guarded structure
				} else {
					toRelease = append(toRelease, ns) //harplint:ignore spinscope -- two-element worst case, amortized append
				}
			}
			outstanding--
			mu.Unlock()
			cur.To(perf.Work)
			for _, ns := range toRelease {
				b.releaseHist(ns)
			}
		}
	})
	b.drainQueue(st)
}

// asyncProcessNode does the whole per-node pipeline privately inside one
// worker: partition the parent's rows, build the needed child histograms
// (smaller child + subtraction), and evaluate the children's splits. cur
// (nil when profiling is off or in virtual mode) tracks the Work-phase
// transitions alongside the prof.Lap chain.
func (b *Builder) asyncProcessNode(st *buildState, parent, left, right *nodeState, childDepth int32, cur *perf.Cursor) {
	cur.SetPhase(perf.PhaseApplySplit)
	defer cur.SetPhase(perf.PhaseOther)
	tm := profile.StartTimer()
	var parentRows engine.RowSet
	if invariant.Enabled {
		parentRows = parent.rows
	}
	goLeft := engine.GoLeftFunc(b.ds.Binned, parent.split)
	lrs, rrs := engine.Partition(parent.rows, goLeft, nil)
	left.rows, right.rows = lrs, rrs
	left.count, right.count = int32(lrs.Len()), int32(rrs.Len())
	parent.rows = engine.RowSet{}
	if invariant.Enabled {
		invariant.PartitionPermutation(parentRows, lrs, rrs, "core.asyncProcessNode")
		invariant.SplitConservation(parent.sum, left.sum, right.sum, "core.asyncProcessNode")
	}
	tm = b.prof.Lap(profile.ApplySplit, tm)
	cur.SetPhase(perf.PhaseBuildHist)

	lNeed := b.canSplitAsync(left, childDepth)
	rNeed := b.canSplitAsync(right, childDepth)
	if !lNeed && !rNeed {
		b.releaseHist(parent)
		return
	}
	small, big := left, right
	if left.count > right.count {
		small, big = right, left
	}
	useSub := !b.cfg.DisableSubtraction && parent.hist != nil
	m := b.ds.NumFeatures()
	buildFull := func(ns *nodeState) {
		ns.hist = b.hpool.Get()
		mBuildHistRows.Add(int64(ns.rows.Len()))
		for fb := 0; fb < b.blocks.NumBlocks(); fb++ {
			b.accumulate(ns.hist, st, ns, 0, ns.rows.Len(), fb, fullBinRange)
		}
		if invariant.Enabled {
			invariant.HistFeatureTotals(ns.hist, ns.sum, "core.asyncProcessNode")
		}
	}
	subFromParent := func(built *nodeState, sibling *nodeState) {
		if invariant.Enabled {
			parentCopy := parent.hist.Clone()
			parent.hist.SubHist(built.hist)
			sibling.hist = parent.hist
			parent.hist = nil
			invariant.HistConservation(parentCopy, built.hist, sibling.hist, "core.asyncProcessNode")
			return
		}
		parent.hist.SubHist(built.hist)
		sibling.hist = parent.hist
		parent.hist = nil
	}
	var evals []*nodeState
	switch {
	case lNeed && rNeed:
		if useSub {
			buildFull(small)
			subFromParent(small, big)
		} else {
			buildFull(left)
			buildFull(right)
			b.releaseHist(parent)
		}
		evals = []*nodeState{left, right}
	default:
		need := left
		if rNeed {
			need = right
		}
		if useSub && need == big {
			buildFull(small)
			subFromParent(small, big)
			b.releaseHist(small)
		} else {
			buildFull(need)
			b.releaseHist(parent)
		}
		evals = []*nodeState{need}
	}
	tm = b.prof.Lap(profile.BuildHist, tm)
	cur.SetPhase(perf.PhaseFindSplit)
	for _, ns := range evals {
		ns.split = ns.hist.FindBestSplitMasked(b.cfg.Params, ns.sum, 0, m, b.colMask)
	}
	b.prof.Stop(profile.FindSplit, tm)
}

// canSplitAsync is canSplit with the depth passed explicitly (the tree must
// not be read outside the queue lock).
func (b *Builder) canSplitAsync(ns *nodeState, depth int32) bool {
	if ns.count < 2 {
		return false
	}
	if ns.sum.H < 2*b.cfg.Params.MinChildWeight {
		return false
	}
	if lim := b.cfg.DepthLimit(); lim > 0 && int(depth) >= lim {
		return false
	}
	return true
}
