package core

import (
	"runtime"
	"time"

	"harpgbdt/internal/engine"
	"harpgbdt/internal/gh"
	"harpgbdt/internal/grow"
	"harpgbdt/internal/obs"
	"harpgbdt/internal/profile"
	"harpgbdt/internal/sched"
	"harpgbdt/internal/tree"
)

// buildAsync runs the loosely-coupled TopK mode: a short barrier-mode
// warm-up until the queue holds enough candidates to feed every worker,
// then a single parallel region in which each worker repeatedly pops a
// candidate from the spin-mutex-guarded shared queue and processes the
// whole node (partition, child histograms, splits) privately. The only
// barrier is at the end of the tree; this is the paper's "mix mode
// (X, node parallelism, X)".
func (b *Builder) buildAsync(st *buildState) {
	maxLeaves := b.cfg.MaxLeaves()
	workers := b.pool.Workers()
	// Beginning phase: node parallelism cannot use the cores while the
	// queue is shorter than the worker count, so run barrier-mode batches
	// (buildHistBatch picks DP for small batches).
	for st.queue.Len() > 0 && st.queue.Len() < workers && st.leaves < maxLeaves {
		k := b.cfg.EffectiveK()
		if rem := maxLeaves - st.leaves; k > rem {
			k = rem
		}
		batch := st.queue.PopBatch(k)
		b.processBatch(st, batch)
	}
	if st.queue.Len() == 0 || st.leaves >= maxLeaves {
		b.drainQueue(st)
		return
	}

	var mu sched.SpinMutex
	outstanding := 0
	b.pool.RunWorkers(func(worker int) {
		for {
			mu.Lock()
			if st.leaves >= maxLeaves {
				for {
					c, ok := st.queue.Pop()
					if !ok {
						break
					}
					b.releaseHist(st.nodes[c.NodeID])
				}
				mu.Unlock()
				return
			}
			c, ok := st.queue.Pop()
			if !ok {
				done := outstanding == 0
				mu.Unlock()
				if done {
					return
				}
				runtime.Gosched()
				continue
			}
			outstanding++
			st.leaves++
			mNodesSplit.Inc()
			mQueueDepth.Set(float64(st.queue.Len()))
			parent := st.nodes[c.NodeID]
			s := parent.split
			l, r := st.t.AddChildren(c.NodeID, s.Feature, s.Bin,
				b.ds.Cuts.UpperBound(int(s.Feature), s.Bin), s.DefaultLeft, s.Gain)
			left := &nodeState{sum: gh.Pair{G: s.LeftG, H: s.LeftH}, split: tree.InvalidSplit()}
			right := &nodeState{sum: gh.Pair{G: s.RightG, H: s.RightH}, split: tree.InvalidSplit()}
			st.nodes = append(st.nodes, left, right)
			childDepth := c.Depth + 1
			mu.Unlock()

			nsp := obs.StartSpanTID("node", "ProcessNode", worker+1)
			b.asyncProcessNode(st, parent, left, right, childDepth)
			nsp.End()

			mu.Lock()
			for i, ns := range []*nodeState{left, right} {
				id := l
				if i == 1 {
					id = r
				}
				tn := &st.t.Nodes[id]
				tn.SumG, tn.SumH, tn.Count = ns.sum.G, ns.sum.H, ns.count
				tn.Weight = b.cfg.Params.CalcWeight(ns.sum.G, ns.sum.H)
				if ns.split.Valid() {
					st.queue.Push(grow.Candidate{NodeID: id, Gain: ns.split.Gain, Depth: childDepth, Count: ns.count})
				} else {
					b.releaseHist(ns)
				}
			}
			outstanding--
			mu.Unlock()
		}
	})
	b.drainQueue(st)
}

// asyncProcessNode does the whole per-node pipeline privately inside one
// worker: partition the parent's rows, build the needed child histograms
// (smaller child + subtraction), and evaluate the children's splits.
func (b *Builder) asyncProcessNode(st *buildState, parent, left, right *nodeState, childDepth int32) {
	t0 := time.Now()
	goLeft := engine.GoLeftFunc(b.ds.Binned, parent.split)
	lrs, rrs := engine.Partition(parent.rows, goLeft, nil)
	left.rows, right.rows = lrs, rrs
	left.count, right.count = int32(lrs.Len()), int32(rrs.Len())
	parent.rows = engine.RowSet{}
	t1 := time.Now()
	b.prof.Add(profile.ApplySplit, t1.Sub(t0))

	lNeed := b.canSplitAsync(left, childDepth)
	rNeed := b.canSplitAsync(right, childDepth)
	if !lNeed && !rNeed {
		b.releaseHist(parent)
		return
	}
	small, big := left, right
	if left.count > right.count {
		small, big = right, left
	}
	useSub := !b.cfg.DisableSubtraction && parent.hist != nil
	m := b.ds.NumFeatures()
	buildFull := func(ns *nodeState) {
		ns.hist = b.hpool.Get()
		mBuildHistRows.Add(int64(ns.rows.Len()))
		for fb := 0; fb < b.blocks.NumBlocks(); fb++ {
			b.accumulate(ns.hist, st, ns, 0, ns.rows.Len(), fb, fullBinRange)
		}
	}
	var evals []*nodeState
	switch {
	case lNeed && rNeed:
		if useSub {
			buildFull(small)
			parent.hist.SubHist(small.hist)
			big.hist = parent.hist
			parent.hist = nil
		} else {
			buildFull(left)
			buildFull(right)
			b.releaseHist(parent)
		}
		evals = []*nodeState{left, right}
	default:
		need := left
		if rNeed {
			need = right
		}
		if useSub && need == big {
			buildFull(small)
			parent.hist.SubHist(small.hist)
			big.hist = parent.hist
			parent.hist = nil
			b.releaseHist(small)
		} else {
			buildFull(need)
			b.releaseHist(parent)
		}
		evals = []*nodeState{need}
	}
	t2 := time.Now()
	b.prof.Add(profile.BuildHist, t2.Sub(t1))
	for _, ns := range evals {
		ns.split = ns.hist.FindBestSplitMasked(b.cfg.Params, ns.sum, 0, m, b.colMask)
	}
	b.prof.Add(profile.FindSplit, time.Since(t2))
}

// canSplitAsync is canSplit with the depth passed explicitly (the tree must
// not be read outside the queue lock).
func (b *Builder) canSplitAsync(ns *nodeState, depth int32) bool {
	if ns.count < 2 {
		return false
	}
	if ns.sum.H < 2*b.cfg.Params.MinChildWeight {
		return false
	}
	if lim := b.cfg.DepthLimit(); lim > 0 && int(depth) >= lim {
		return false
	}
	return true
}
