package core

import (
	"fmt"
	"math"
	"testing"

	"harpgbdt/internal/gh"
	"harpgbdt/internal/grow"
	"harpgbdt/internal/sched"
	"harpgbdt/internal/tree"
)

// This file is the deterministic schedule model checker for the ASYNC
// worker loop. sched.Choreo serializes the workers at the yield points
// annotated in buildAsync ("loop", "claimed", "grafted", "publish",
// "exit") and a seeded pick function enumerates interleavings; for every
// explored schedule the checker asserts the invariants the paper's
// loosely-coupled mode rests on:
//
//   - schedule independence: the grown tree is equivalent (up to node
//     numbering) to a single-worker reference build — the TopK queue plus
//     the three-section locking discipline must make the result a pure
//     function of the data;
//   - GHSum conservation: every split partitions the parent's gradient
//     sums exactly onto its children (no lost or doubled rows across the
//     claim/graft/publish hand-offs);
//   - partition permutation: child row counts sum to the parent's count at
//     every node, and the leaf counts sum to N.
//
// The depth limit (not the leaf cap) bounds growth, so the final frontier
// is schedule-independent by construction and any divergence is a real
// synchronization bug, not a tie-break artifact.

// schedCheckConfig grows a depth-limited TopK tree: TreeSize 10 allows 512
// leaves so the leaf cap never binds, MaxDepth 5 bounds the tree at 32
// leaves, K=1 keeps the barrier-mode warm-up as short as possible so the
// ASYNC region does almost all the work.
func schedCheckConfig(workers int) Config {
	return Config{
		Mode:     Async,
		K:        1,
		Growth:   grow.Leafwise,
		TreeSize: 10,
		MaxDepth: 5,
		Params:   tree.DefaultSplitParams(),
		Workers:  workers,
	}
}

// splitmix64 is the pick-function RNG: pure, seedable, stateless.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// buildUnderSchedule runs one ASYNC build with the workers driven through
// the interleaving chosen by the seeded pick function, returning the tree
// and the schedule trace that identifies the interleaving.
func buildUnderSchedule(t *testing.T, workers int, seed uint64, grad gh.Buffer, b *Builder) (*tree.Tree, []int) {
	t.Helper()
	choreo := sched.NewChoreo(workers, func(step int, runnable []int) int {
		return int(splitmix64(seed^uint64(step)*0x2545f4914f6cdd1d) % uint64(len(runnable)))
	})
	asyncYield = func(worker int, point string) {
		if point == "exit" {
			choreo.Exit(worker)
			return
		}
		choreo.Yield(worker)
	}
	defer func() { asyncYield = nil }()
	bt, err := b.BuildTree(grad)
	if err != nil {
		t.Fatalf("seed %d: BuildTree: %v", seed, err)
	}
	if err := bt.Tree.Validate(); err != nil {
		t.Fatalf("seed %d: invalid tree: %v", seed, err)
	}
	return bt.Tree, choreo.Trace()
}

// checkConservation walks every internal node asserting GHSum and count
// conservation, and that leaf counts sum to n.
func checkConservation(t *testing.T, tr *tree.Tree, n int, seed uint64) {
	t.Helper()
	leafCount := int32(0)
	for id := range tr.Nodes {
		nd := &tr.Nodes[id]
		if nd.IsLeaf() {
			leafCount += nd.Count
			continue
		}
		l, r := &tr.Nodes[nd.Left], &tr.Nodes[nd.Right]
		if l.Count+r.Count != nd.Count {
			t.Fatalf("seed %d: node %d: child counts %d+%d != %d (partition permutation broken)",
				seed, id, l.Count, r.Count, nd.Count)
		}
		if dg := math.Abs(l.SumG + r.SumG - nd.SumG); dg > 1e-9 {
			t.Fatalf("seed %d: node %d: GHSum G conservation off by %g", seed, id, dg)
		}
		if dh := math.Abs(l.SumH + r.SumH - nd.SumH); dh > 1e-9 {
			t.Fatalf("seed %d: node %d: GHSum H conservation off by %g", seed, id, dh)
		}
	}
	if int(leafCount) != n {
		t.Fatalf("seed %d: leaf counts sum to %d, want %d rows", seed, leafCount, n)
	}
}

// TestAsyncScheduleChecker enumerates at least 100 distinct interleavings
// of the 3-worker ASYNC loop and requires every invariant to hold on each.
func TestAsyncScheduleChecker(t *testing.T) {
	const (
		workers      = 3
		rows         = 600
		features     = 6
		wantDistinct = 100
		seedCap      = 400
	)
	ds := testDataset(t, rows, features)
	grad := dyadicGradients(rows, 5)

	// Reference: the same configuration on a single worker (one actor, so
	// exactly one interleaving exists).
	refBuilder, err := NewBuilder(schedCheckConfig(1), ds)
	if err != nil {
		t.Fatal(err)
	}
	refBT, err := refBuilder.BuildTree(grad)
	if err != nil {
		t.Fatal(err)
	}
	ref := refBT.Tree
	checkConservation(t, ref, rows, 0)
	if ref.NumLeaves() < 8 {
		t.Fatalf("reference tree too small (%d leaves) to exercise the ASYNC region", ref.NumLeaves())
	}

	distinct := make(map[string]bool)
	builds := 0
	for seed := uint64(1); seed <= seedCap && len(distinct) < wantDistinct; seed++ {
		b, err := NewBuilder(schedCheckConfig(workers), ds)
		if err != nil {
			t.Fatal(err)
		}
		tr, trace := buildUnderSchedule(t, workers, seed, grad, b)
		builds++
		if len(trace) == 0 {
			t.Fatalf("seed %d: the ASYNC region never ran (no schedule points hit)", seed)
		}
		distinct[fmt.Sprint(trace)] = true

		if !treesEquivalent(ref, tr) {
			t.Fatalf("seed %d: tree differs from the single-worker reference; ASYNC result is schedule-dependent", seed)
		}
		checkConservation(t, tr, rows, seed)
	}
	if len(distinct) < wantDistinct {
		t.Fatalf("explored only %d distinct interleavings in %d builds, want >= %d",
			len(distinct), builds, wantDistinct)
	}
	t.Logf("schedule checker: %d distinct interleavings over %d builds, all invariants held", len(distinct), builds)
}

// TestAsyncScheduleReplay pins determinism of the harness itself: the same
// seed must replay the same interleaving and grow the identical tree.
func TestAsyncScheduleReplay(t *testing.T) {
	const workers = 3
	ds := testDataset(t, 400, 5)
	grad := dyadicGradients(400, 9)
	var first *tree.Tree
	var firstTrace string
	for run := 0; run < 2; run++ {
		b, err := NewBuilder(schedCheckConfig(workers), ds)
		if err != nil {
			t.Fatal(err)
		}
		tr, trace := buildUnderSchedule(t, workers, 42, grad, b)
		if run == 0 {
			first, firstTrace = tr, fmt.Sprint(trace)
			continue
		}
		if fmt.Sprint(trace) != firstTrace {
			t.Fatal("same seed replayed a different interleaving")
		}
		if !treesEquivalent(first, tr) {
			t.Fatal("same interleaving grew a different tree")
		}
	}
}
