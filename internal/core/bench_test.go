package core

// Ablation benchmarks for the design choices DESIGN.md calls out: each
// benchmark isolates one optimization (MemBuf, histogram subtraction,
// feature blocks, node blocks, TopK batching, parallel mode) so its effect
// on single-tree build time can be measured directly.

import (
	"testing"

	"harpgbdt/internal/dataset"
	"harpgbdt/internal/grow"
	"harpgbdt/internal/synth"
	"harpgbdt/internal/tree"
)

func newBenchData(rows, features int) (*dataset.Dataset, error) {
	return synth.Make(synth.Config{Spec: synth.SynSet, Rows: rows, Features: features, Seed: 77}, 64)
}

func benchBuild(b *testing.B, cfg Config) {
	b.Helper()
	ds, err := newBenchData(8000, 32)
	if err != nil {
		b.Fatal(err)
	}
	grad := dyadicGradients(8000, 1)
	cfg.Growth = grow.Leafwise
	cfg.Params = tree.DefaultSplitParams()
	builder, err := NewBuilder(cfg, ds)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := builder.BuildTree(grad); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBaselineConfig(b *testing.B) {
	benchBuild(b, Config{Mode: Sync, K: 32, TreeSize: 7, FeatureBlockSize: 4, NodeBlockSize: 32, UseMemBuf: true})
}

func BenchmarkAblationNoMemBuf(b *testing.B) {
	benchBuild(b, Config{Mode: Sync, K: 32, TreeSize: 7, FeatureBlockSize: 4, NodeBlockSize: 32})
}

func BenchmarkAblationNoSubtraction(b *testing.B) {
	benchBuild(b, Config{Mode: Sync, K: 32, TreeSize: 7, FeatureBlockSize: 4, NodeBlockSize: 32, UseMemBuf: true, DisableSubtraction: true})
}

func BenchmarkAblationK1(b *testing.B) {
	benchBuild(b, Config{Mode: Sync, K: 1, TreeSize: 7, FeatureBlockSize: 4, NodeBlockSize: 1, UseMemBuf: true})
}

func BenchmarkAblationFeatureBlock1(b *testing.B) {
	benchBuild(b, Config{Mode: Sync, K: 32, TreeSize: 7, FeatureBlockSize: 1, NodeBlockSize: 32, UseMemBuf: true})
}

func BenchmarkAblationFeatureBlockAll(b *testing.B) {
	benchBuild(b, Config{Mode: Sync, K: 32, TreeSize: 7, FeatureBlockSize: 0, NodeBlockSize: 32, UseMemBuf: true})
}

func BenchmarkAblationModeDP(b *testing.B) {
	benchBuild(b, Config{Mode: DP, K: 32, TreeSize: 7, FeatureBlockSize: 32, NodeBlockSize: 4, UseMemBuf: true})
}

func BenchmarkAblationModeMP(b *testing.B) {
	benchBuild(b, Config{Mode: MP, K: 32, TreeSize: 7, FeatureBlockSize: 4, NodeBlockSize: 32, UseMemBuf: true})
}

func BenchmarkAblationModeAsync(b *testing.B) {
	benchBuild(b, Config{Mode: Async, K: 32, TreeSize: 7, FeatureBlockSize: 4, NodeBlockSize: 32, UseMemBuf: true})
}

func BenchmarkAblationBinBlock(b *testing.B) {
	benchBuild(b, Config{Mode: MP, K: 32, TreeSize: 7, FeatureBlockSize: 4, NodeBlockSize: 32, BinBlockSize: 64, UseMemBuf: true})
}
