// Package core implements the paper's contribution: the HarpGBDT tree
// builder with TopK growth, block-wise parallelism over
// ⟨row, node, bin, feature⟩ blocks, the DP/MP/SYNC/ASYNC parallel modes,
// and the MemBuf and histogram-subtraction memory optimizations.
//
// # Parallel structure
//
// Every boosting round builds one tree. The builder pops the top K
// candidate leaves from the growth queue and processes the whole batch
// with three barrier-separated phases (ApplySplit, BuildHist, FindSplit),
// so the number of synchronizations per tree is O(L/K) instead of the
// O(L) of leaf-by-leaf engines:
//
//   - DP (data parallelism): BuildHist tasks are ⟨node, row block, feature
//     block⟩ cubes accumulating into per-worker histogram replicas that are
//     reduced afterwards; node_blk_size nodes share one parallel region, so
//     regions per batch = K / node_blk_size (this is the "for-loops drop
//     from L to L/H" of Sec. IV-D).
//   - MP (model parallelism): BuildHist tasks are ⟨node group, feature
//     block, bin block⟩ cubes writing directly into the owning node's
//     GHSum region — conflict-free, no replicas, one region per batch.
//   - SYNC: the mixed mode (DP, MP, DP): batches with fewer nodes than
//     workers run the DP kernel (enough row-level parallelism), larger
//     batches run MP.
//   - ASYNC: the loosely-coupled TopK mode: K workers pop candidates from a
//     spin-mutex-guarded shared queue and each processes a whole node
//     (partition, hist, split) privately; the only barrier is at tree end.
package core

import (
	"fmt"

	"harpgbdt/internal/grow"
	"harpgbdt/internal/sched"
	"harpgbdt/internal/tree"
)

// Mode selects the parallel design (Table II of the paper).
type Mode int

const (
	// DP is pure data parallelism (row-partitioned BuildHist with replica
	// reduction).
	DP Mode = iota
	// MP is pure model parallelism (feature/bin/node-partitioned BuildHist
	// with conflict-free writes).
	MP
	// Sync is the phase-mixed mode (DP, MP, DP).
	Sync
	// Async is node-level parallelism over a shared queue with no
	// inter-node barriers.
	Async
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case DP:
		return "DP"
	case MP:
		return "MP"
	case Sync:
		return "SYNC"
	case Async:
		return "ASYNC"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config are the HarpGBDT system parameters (Table IV) plus the tree
// hyper-parameters shared with the baselines.
type Config struct {
	// Mode selects the parallel design.
	Mode Mode
	// K is the number of candidates popped per batch (TopK growth). 0
	// defaults to 1 (standard leafwise) under Leafwise growth and to "all"
	// under Depthwise.
	K int
	// Growth orders the candidate queue (grow.Leafwise or grow.Depthwise).
	Growth grow.Method
	// TreeSize is the paper's D: the tree is limited to 2^(D-1) leaves; in
	// depthwise growth the depth is also limited to D-1 so a full tree has
	// 2^D - 1 nodes. 0 defaults to 8.
	TreeSize int
	// MaxDepth additionally caps node depth in leafwise/TopK growth
	// (0 = unlimited, the LightGBM default the paper uses).
	MaxDepth int
	// RowBlockSize is the DP row-block length. 0 defaults to ceil(N/T).
	RowBlockSize int
	// NodeBlockSize groups that many nodes per DP parallel region / per MP
	// task. 0 defaults to 1.
	NodeBlockSize int
	// FeatureBlockSize is the feature-block width. 0 defaults to all
	// features (pure data parallelism); 1 is classic feature-wise
	// parallelism.
	FeatureBlockSize int
	// BinBlockSize splits each feature's bins into ranges of this size for
	// MP tasks. 0 or >= 256 disables bin-level parallelism.
	BinBlockSize int
	// UseMemBuf enables the (rowid, g, h) gradient-replica row lists.
	UseMemBuf bool
	// DisableSubtraction turns off the parent-minus-child histogram trick
	// (used by ablation benches; the trick is on by default).
	DisableSubtraction bool
	// Params are the split regularization hyper-parameters.
	Params tree.SplitParams
	// Workers is the parallel width. 0 defaults to GOMAXPROCS (real mode)
	// or 32, the paper's thread count (virtual mode).
	Workers int
	// ColSampleByTree in (0, 1) restricts each tree's split search to a
	// random feature fraction (column subsampling). 0 or 1 disables.
	ColSampleByTree float64
	// Seed drives the column-sampling RNG (per-tree masks advance
	// deterministically from it).
	Seed uint64
	// Virtual runs the engine on the simulated parallel machine
	// (sched.NewVirtualPool): kernels execute serially and a deterministic
	// discrete-event simulation computes the parallel timing. This is the
	// substitute for the paper's 36-core Xeon on hosts with few cores.
	Virtual bool
	// Perf enables the per-worker wait-state accounting (internal/perf):
	// the builder attaches a perf.Accounting to its pool and attributes
	// every worker's time to Work / BarrierWait / SpinWait / QueueWait /
	// Idle, feeding the parallel-efficiency reports. Off by default; the
	// disabled cost is a nil check per instrumentation site.
	Perf bool
	// Cost overrides the virtual machine's cost model (zero = defaults).
	Cost sched.CostModel
}

// DefaultConfig mirrors the paper's HarpGBDT defaults: leafwise TopK with
// K=32, ASYNC mode, feature blocks of 4, node blocks of 32, MemBuf on.
func DefaultConfig() Config {
	return Config{
		Mode:             Async,
		K:                32,
		Growth:           grow.Leafwise,
		TreeSize:         8,
		FeatureBlockSize: 4,
		NodeBlockSize:    32,
		UseMemBuf:        true,
		Params:           tree.DefaultSplitParams(),
	}
}

// MaxLeaves returns the leaf budget 2^(D-1).
func (c Config) MaxLeaves() int {
	d := c.TreeSize
	if d <= 0 {
		d = 8
	}
	if d > 30 {
		d = 30
	}
	return 1 << (d - 1)
}

// DepthLimit returns the effective depth cap (0 = none).
func (c Config) DepthLimit() int {
	if c.Growth == grow.Depthwise {
		d := c.TreeSize
		if d <= 0 {
			d = 8
		}
		return d - 1
	}
	return c.MaxDepth
}

// EffectiveK returns the batch size actually used.
func (c Config) EffectiveK() int {
	if c.K > 0 {
		return c.K
	}
	if c.Growth == grow.Depthwise {
		return 1 << 30 // whole level
	}
	return 1
}

// Validate rejects impossible configurations.
func (c Config) Validate() error {
	if c.Mode < DP || c.Mode > Async {
		return fmt.Errorf("core: invalid mode %d", int(c.Mode))
	}
	if c.K < 0 {
		return fmt.Errorf("core: negative K %d", c.K)
	}
	if c.TreeSize < 0 || c.TreeSize > 30 {
		return fmt.Errorf("core: tree size %d out of range [0,30]", c.TreeSize)
	}
	if c.RowBlockSize < 0 || c.NodeBlockSize < 0 || c.FeatureBlockSize < 0 || c.BinBlockSize < 0 {
		return fmt.Errorf("core: negative block size")
	}
	if c.MaxDepth < 0 {
		return fmt.Errorf("core: negative max depth %d", c.MaxDepth)
	}
	if c.Params.Lambda < 0 || c.Params.MinChildWeight < 0 {
		return fmt.Errorf("core: negative regularization")
	}
	if c.ColSampleByTree < 0 || c.ColSampleByTree > 1 {
		return fmt.Errorf("core: colsample_bytree %g out of [0, 1]", c.ColSampleByTree)
	}
	return nil
}
