package core

import (
	"fmt"

	"harpgbdt/internal/dataset"
	"harpgbdt/internal/engine"
	"harpgbdt/internal/gh"
	"harpgbdt/internal/grow"
	"harpgbdt/internal/histogram"
	"harpgbdt/internal/invariant"
	"harpgbdt/internal/obs"
	"harpgbdt/internal/perf"
	"harpgbdt/internal/profile"
	"harpgbdt/internal/sched"
	"harpgbdt/internal/synth"
	"harpgbdt/internal/tree"
)

// Engine metrics, pre-registered in the obs default registry so they are
// exported whenever an observability server is running. The handles are
// bare atomics; updates cost a few nanoseconds and are placed at per-node
// (not per-row) granularity so the disabled cost is unmeasurable.
var (
	mTreesBuilt = obs.DefaultRegistry().Counter("trees_built_total",
		"Trees built by the harp engine.")
	mNodesSplit = obs.DefaultRegistry().Counter("nodes_split_total",
		"Tree nodes split into children by the harp engine.")
	mBuildHistRows = obs.DefaultRegistry().Counter("buildhist_rows_total",
		"Rows accumulated into node histograms (per histogram build, pre-subtraction).")
	mQueueDepth = obs.DefaultRegistry().Gauge("queue_depth",
		"Splittable candidates currently waiting in the grow queue.")
	mBlockTaskSeconds = obs.DefaultRegistry().Histogram("block_task_seconds",
		"Duration distribution of scheduled block tasks (hist kernels and split search).", nil)
)

// Builder is the HarpGBDT tree builder. It is bound to one dataset and one
// scheduler and may be reused across boosting rounds. It is not safe for
// concurrent BuildTree calls.
type Builder struct {
	cfg    Config
	ds     *dataset.Dataset
	pool   *sched.Pool
	layout *histogram.Layout
	hpool  *histogram.Pool
	blocks *dataset.ColumnBlocks
	prof   *profile.Breakdown

	// acc is the per-worker wait-state ledger (nil unless cfg.Perf); the
	// named counter handles below are cached so hot paths skip the
	// registry lookup (nil handles are inert).
	acc         *perf.Accounting
	cWarmup     *perf.Counter
	cAsyncNodes *perf.Counter
	cQueueEmpty *perf.Counter

	// round counts BuildTree calls (drives per-tree column sampling).
	round int
	// colMask marks the features eligible for splits this tree (nil = all).
	colMask []bool
}

// NewBuilder validates the configuration and prepares the block layout.
func NewBuilder(cfg Config, ds *dataset.Dataset) (*Builder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if cfg.TreeSize == 0 {
		cfg.TreeSize = 8
	}
	fbs := cfg.FeatureBlockSize
	if fbs <= 0 || fbs > ds.NumFeatures() {
		fbs = ds.NumFeatures()
	}
	if fbs < 1 {
		fbs = 1
	}
	cfg.FeatureBlockSize = fbs
	if cfg.NodeBlockSize <= 0 {
		cfg.NodeBlockSize = 1
	}
	layout := histogram.NewLayout(ds.Cuts)
	pool := sched.NewPool(cfg.Workers)
	if cfg.Virtual {
		pool = sched.NewVirtualPool(cfg.Workers, cfg.Cost)
	}
	b := &Builder{
		cfg:    cfg,
		ds:     ds,
		pool:   pool,
		layout: layout,
		hpool:  histogram.NewPool(layout),
		blocks: dataset.NewColumnBlocks(ds.Binned, fbs),
		prof:   &profile.Breakdown{},
	}
	if cfg.Perf {
		b.acc = perf.NewAccounting(pool.Workers())
		pool.SetAccounting(b.acc)
		b.cWarmup = b.acc.Counter("async_warmup_batches_total")
		b.cAsyncNodes = b.acc.Counter("async_nodes_total")
		b.cQueueEmpty = b.acc.Counter("async_queue_empty_total")
	}
	return b, nil
}

// Name implements engine.Builder.
func (b *Builder) Name() string { return "harp-" + b.cfg.Mode.String() }

// Pool implements engine.Builder.
func (b *Builder) Pool() *sched.Pool { return b.pool }

// Profile implements engine.Builder.
func (b *Builder) Profile() *profile.Breakdown { return b.prof }

// Config returns the builder's configuration (after defaulting).
func (b *Builder) Config() Config { return b.cfg }

// HistogramsAllocated reports the peak histogram count, a model-memory
// footprint metric.
func (b *Builder) HistogramsAllocated() int { return b.hpool.Allocated() }

// Perf returns the per-worker wait-state ledger (nil unless Config.Perf).
func (b *Builder) Perf() *perf.Accounting { return b.acc }

// nodeState is the per-node training state: the node's row set, gradient
// totals, histogram (while alive) and chosen split.
type nodeState struct {
	rows  engine.RowSet
	sum   gh.Pair
	count int32
	hist  *histogram.Hist
	split tree.SplitInfo
}

// buildState is the per-tree state.
type buildState struct {
	grad   gh.Buffer
	t      *tree.Tree
	nodes  []*nodeState
	queue  *grow.Queue
	leaves int
}

// BuildTree implements engine.Builder.
func (b *Builder) BuildTree(grad gh.Buffer) (*engine.BuiltTree, error) {
	if len(grad) != b.ds.NumRows() {
		return nil, fmt.Errorf("core: %d gradients for %d rows", len(grad), b.ds.NumRows())
	}
	if b.ds.NumRows() == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	sp := obs.StartSpan("tree", "BuildTree")
	b.sampleColumns()
	st := b.newBuildState(grad)
	switch {
	case b.cfg.Mode == Async && b.pool.Virtual():
		b.buildAsyncVirtual(st)
	case b.cfg.Mode == Async:
		b.buildAsync(st)
	default:
		b.buildBarrier(st)
	}
	bt := b.finish(st)
	mTreesBuilt.Inc()
	b.acc.EmitTrace()
	if sp.Active() {
		sp.EndWith(obs.Arg{Key: "mode", Value: b.cfg.Mode.String()},
			obs.Arg{Key: "leaves", Value: st.leaves})
	}
	return bt, nil
}

// newBuildState prepares the root node, its histogram and its split.
func (b *Builder) newBuildState(grad gh.Buffer) *buildState {
	n := b.ds.NumRows()
	rootRows := engine.RootRowSet(n, grad, b.cfg.UseMemBuf)
	rootSum := rootRows.Sum(grad)
	t := tree.New(rootSum.G, rootSum.H, int32(n))
	t.Nodes[0].Weight = b.cfg.Params.CalcWeight(rootSum.G, rootSum.H)
	st := &buildState{
		grad:   grad,
		t:      t,
		nodes:  []*nodeState{{rows: rootRows, sum: rootSum, count: int32(n), split: tree.InvalidSplit()}},
		queue:  grow.NewQueue(b.cfg.Growth),
		leaves: 1,
	}
	b.buildHistBatch(st, []int32{0})
	b.findSplitBatch(st, []int32{0})
	b.pushOrFinalize(st, 0)
	return st
}

// buildBarrier runs the batched barrier-mode main loop (DP, MP and SYNC).
func (b *Builder) buildBarrier(st *buildState) {
	maxLeaves := b.cfg.MaxLeaves()
	for st.queue.Len() > 0 && st.leaves < maxLeaves {
		k := b.cfg.EffectiveK()
		if rem := maxLeaves - st.leaves; k > rem {
			k = rem
		}
		batch := st.queue.PopBatch(k)
		mQueueDepth.Set(float64(st.queue.Len()))
		b.processBatch(st, batch)
	}
	b.drainQueue(st)
}

// processBatch applies the splits of a popped batch and prepares its
// children: the three barrier phases of one TopK step.
func (b *Builder) processBatch(st *buildState, batch []grow.Candidate) {
	var regions0 int64
	if b.acc != nil {
		regions0 = b.pool.Stats().Regions
	}
	pairs := b.applySplitBatch(st, batch)
	st.leaves += len(batch)
	mNodesSplit.Add(int64(len(batch)))
	buildIDs, subs, evalIDs := b.planHists(st, pairs)
	b.buildHistBatch(st, buildIDs)
	b.applySubtractions(st, subs)
	b.findSplitBatch(st, evalIDs)
	for _, id := range evalIDs {
		b.pushOrFinalize(st, id)
	}
	if b.acc != nil && len(batch) > 0 {
		// Per-depth synchronization count: the barriers this batch cost,
		// attributed to the deepest node in it (the paper's O(2^D)
		// barrier-growth measurement).
		depth := batch[0].Depth
		for _, c := range batch[1:] {
			if c.Depth > depth {
				depth = c.Depth
			}
		}
		b.acc.AddDepthSync(int(depth), b.pool.Stats().Regions-regions0)
	}
}

// sampleColumns draws this tree's feature mask when column subsampling is
// enabled, guaranteeing at least one eligible feature.
func (b *Builder) sampleColumns() {
	cs := b.cfg.ColSampleByTree
	b.round++
	if cs <= 0 || cs >= 1 {
		b.colMask = nil
		return
	}
	m := b.ds.NumFeatures()
	rng := synth.NewRNG(b.cfg.Seed ^ (uint64(b.round) * 0x9e3779b97f4a7c15))
	mask := make([]bool, m)
	any := false
	for f := 0; f < m; f++ {
		if rng.Float64() < cs {
			mask[f] = true
			any = true
		}
	}
	if !any {
		mask[rng.Intn(m)] = true
	}
	b.colMask = mask
}

// childPair records one applied split.
type childPair struct {
	parent, left, right int32
}

// applySplitBatch expands the tree for every candidate and partitions their
// row sets (ApplySplit). Tree mutation is serial; partitions run in
// parallel.
func (b *Builder) applySplitBatch(st *buildState, batch []grow.Candidate) []childPair {
	sp := obs.StartSpan("phase", "ApplySplit")
	prevPhase := b.acc.SetPhase(perf.PhaseApplySplit)
	defer b.acc.SetPhase(prevPhase)
	tm := profile.StartTimer()
	pairs := make([]childPair, len(batch))
	for i, c := range batch {
		ns := st.nodes[c.NodeID]
		s := ns.split
		l, r := st.t.AddChildren(c.NodeID, s.Feature, s.Bin,
			b.ds.Cuts.UpperBound(int(s.Feature), s.Bin), s.DefaultLeft, s.Gain)
		left := &nodeState{sum: gh.Pair{G: s.LeftG, H: s.LeftH}, split: tree.InvalidSplit()}
		right := &nodeState{sum: gh.Pair{G: s.RightG, H: s.RightH}, split: tree.InvalidSplit()}
		st.nodes = append(st.nodes, left, right)
		pairs[i] = childPair{parent: c.NodeID, left: l, right: r}
	}
	// Partition phase: one parallel region for the whole batch.
	if len(batch) == 1 {
		b.partitionNode(st, pairs[0], b.pool)
	} else {
		tasks := make([]func(int), len(pairs))
		for i := range pairs {
			p := pairs[i]
			tasks[i] = func(w int) {
				tsp := obs.StartSpanTID("block-task", "partition", w+1)
				b.partitionNode(st, p, nil)
				tsp.End()
			}
		}
		b.pool.RunTasks(tasks)
	}
	for _, p := range pairs {
		ln, rn := st.nodes[p.left], st.nodes[p.right]
		lw, rw := &st.t.Nodes[p.left], &st.t.Nodes[p.right]
		lw.SumG, lw.SumH, lw.Count = ln.sum.G, ln.sum.H, ln.count
		rw.SumG, rw.SumH, rw.Count = rn.sum.G, rn.sum.H, rn.count
		lw.Weight = b.cfg.Params.CalcWeight(ln.sum.G, ln.sum.H)
		rw.Weight = b.cfg.Params.CalcWeight(rn.sum.G, rn.sum.H)
	}
	b.prof.Stop(profile.ApplySplit, tm)
	sp.End()
	return pairs
}

// partitionNode splits the parent's row set between the two children and
// releases the parent's rows.
func (b *Builder) partitionNode(st *buildState, p childPair, pool *sched.Pool) {
	parent := st.nodes[p.parent]
	var parentRows engine.RowSet
	if invariant.Enabled {
		parentRows = parent.rows
	}
	goLeft := engine.GoLeftFunc(b.ds.Binned, parent.split)
	l, r := engine.Partition(parent.rows, goLeft, pool)
	ln, rn := st.nodes[p.left], st.nodes[p.right]
	ln.rows, rn.rows = l, r
	ln.count, rn.count = int32(l.Len()), int32(r.Len())
	parent.rows = engine.RowSet{}
	if invariant.Enabled {
		invariant.PartitionPermutation(parentRows, l, r, "core.partitionNode")
		invariant.SplitConservation(parent.sum, ln.sum, rn.sum, "core.partitionNode")
	}
}

// planHists decides which children need histograms and how to obtain them.
// It returns the nodes to build directly, the subtraction steps to apply
// after building, and the nodes whose splits must then be evaluated.
// Parent histograms are released here when they will not be consumed by a
// subtraction.
func (b *Builder) planHists(st *buildState, pairs []childPair) (buildIDs []int32, subs []subTask, evalIDs []int32) {
	for _, p := range pairs {
		ln, rn := st.nodes[p.left], st.nodes[p.right]
		lNeed := b.canSplit(st, p.left)
		rNeed := b.canSplit(st, p.right)
		parent := st.nodes[p.parent]
		if !lNeed && !rNeed {
			b.releaseHist(parent)
			continue
		}
		small, big := p.left, p.right
		if ln.count > rn.count {
			small, big = p.right, p.left
		}
		useSub := !b.cfg.DisableSubtraction && parent.hist != nil
		switch {
		case lNeed && rNeed:
			if useSub {
				buildIDs = append(buildIDs, small)
				subs = append(subs, subTask{parent: p.parent, built: small, sibling: big})
			} else {
				buildIDs = append(buildIDs, p.left, p.right)
				b.releaseHist(parent)
			}
			evalIDs = append(evalIDs, p.left, p.right)
		default:
			need := p.left
			if rNeed {
				need = p.right
			}
			if useSub && need == big {
				// Building the smaller child and subtracting is cheaper
				// than scanning the bigger child's rows.
				buildIDs = append(buildIDs, small)
				subs = append(subs, subTask{parent: p.parent, built: small, sibling: big, dropBuilt: true})
			} else {
				buildIDs = append(buildIDs, need)
				b.releaseHist(parent)
			}
			evalIDs = append(evalIDs, need)
		}
	}
	return buildIDs, subs, evalIDs
}

// subTask is one histogram subtraction: sibling = parent - built.
type subTask struct {
	parent, built, sibling int32
	// dropBuilt releases the built child's histogram after subtracting
	// (the built child itself did not need a histogram).
	dropBuilt bool
}

// applySubtractions performs the planned subtractions, transferring the
// parent histogram to the sibling.
func (b *Builder) applySubtractions(st *buildState, subs []subTask) {
	if len(subs) == 0 {
		return
	}
	sp := obs.StartSpan("phase", "SubHist")
	prevPhase := b.acc.SetPhase(perf.PhaseBuildHist)
	defer b.acc.SetPhase(prevPhase)
	tm := profile.StartTimer()
	tasks := make([]func(int), len(subs))
	for i := range subs {
		s := subs[i]
		tasks[i] = func(w int) {
			tsp := obs.StartSpanTID("block-task", "sub-hist", w+1)
			defer tsp.End()
			parent := st.nodes[s.parent]
			built := st.nodes[s.built]
			sib := st.nodes[s.sibling]
			var parentCopy *histogram.Hist
			if invariant.Enabled {
				parentCopy = parent.hist.Clone()
			}
			parent.hist.SubHist(built.hist)
			sib.hist = parent.hist
			parent.hist = nil
			if invariant.Enabled {
				invariant.HistConservation(parentCopy, built.hist, sib.hist, "core.applySubtractions")
			}
			if s.dropBuilt {
				b.hpool.Put(built.hist)
				built.hist = nil
			}
		}
	}
	b.pool.RunTasks(tasks)
	b.prof.Stop(profile.BuildHist, tm)
	sp.End()
}

// canSplit reports whether node id can possibly be split further.
func (b *Builder) canSplit(st *buildState, id int32) bool {
	ns := st.nodes[id]
	if ns.count < 2 {
		return false
	}
	if ns.sum.H < 2*b.cfg.Params.MinChildWeight {
		return false
	}
	if lim := b.cfg.DepthLimit(); lim > 0 && int(st.t.Nodes[id].Depth) >= lim {
		return false
	}
	return true
}

// pushOrFinalize queues node id as a split candidate, or finalizes it as a
// leaf (releasing its histogram) when its best split is invalid.
func (b *Builder) pushOrFinalize(st *buildState, id int32) {
	ns := st.nodes[id]
	if !ns.split.Valid() {
		b.releaseHist(ns)
		return
	}
	st.queue.Push(grow.Candidate{
		NodeID: id,
		Gain:   ns.split.Gain,
		Depth:  st.t.Nodes[id].Depth,
		Count:  ns.count,
	})
}

// drainQueue finalizes all still-queued candidates as leaves.
func (b *Builder) drainQueue(st *buildState) {
	for {
		c, ok := st.queue.Pop()
		if !ok {
			return
		}
		b.releaseHist(st.nodes[c.NodeID])
	}
}

func (b *Builder) releaseHist(ns *nodeState) {
	if ns.hist != nil {
		b.hpool.Put(ns.hist)
		ns.hist = nil
	}
}

// findSplitBatch evaluates the best split of every listed node: one
// parallel region of (node x feature block) tasks followed by a
// deterministic serial reduction.
func (b *Builder) findSplitBatch(st *buildState, ids []int32) {
	if len(ids) == 0 {
		return
	}
	sp := obs.StartSpan("phase", "FindSplit")
	prevPhase := b.acc.SetPhase(perf.PhaseFindSplit)
	defer b.acc.SetPhase(prevPhase)
	tm := profile.StartTimer()
	nb := b.blocks.NumBlocks()
	results := make([]tree.SplitInfo, len(ids)*nb)
	tasks := make([]func(int), 0, len(ids)*nb)
	for i := range ids {
		ns := st.nodes[ids[i]]
		for fb := 0; fb < nb; fb++ {
			i, fb := i, fb
			tasks = append(tasks, func(w int) {
				tsp := obs.StartSpanTID("block-task", "find-split", w+1)
				ttm := profile.StartTimer()
				fLo, fHi, _ := b.blocks.Block(fb)
				results[i*nb+fb] = ns.hist.FindBestSplitMasked(b.cfg.Params, ns.sum, fLo, fHi, b.colMask)
				mBlockTaskSeconds.Observe(ttm.Elapsed().Seconds())
				tsp.End()
			})
		}
	}
	b.pool.RunTasks(tasks)
	for i, id := range ids {
		best := tree.InvalidSplit()
		for fb := 0; fb < nb; fb++ {
			if r := results[i*nb+fb]; r.Better(best) {
				best = r
			}
		}
		st.nodes[id].split = best
	}
	b.prof.Stop(profile.FindSplit, tm)
	sp.End()
}

// finish assembles the BuiltTree and releases remaining resources.
func (b *Builder) finish(st *buildState) *engine.BuiltTree {
	leafRows := make(map[int32]engine.RowSet)
	for id := range st.nodes {
		ns := st.nodes[id]
		b.releaseHist(ns)
		if st.t.Nodes[id].IsLeaf() {
			leafRows[int32(id)] = ns.rows
		}
		ns.rows = engine.RowSet{}
	}
	leafOf := engine.ScatterLeaves(b.ds.NumRows(), leafRows)
	return &engine.BuiltTree{Tree: st.t, LeafOf: leafOf}
}
