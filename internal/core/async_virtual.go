package core

import (
	"math"

	"harpgbdt/internal/gh"
	"harpgbdt/internal/grow"
	"harpgbdt/internal/perf"
	"harpgbdt/internal/profile"
	"harpgbdt/internal/tree"
)

// buildAsyncVirtual is the ASYNC mode on the simulated parallel machine: a
// discrete-event simulation of K workers popping from the shared candidate
// queue. Each node's pipeline (partition, child histograms, splits) runs
// serially and its measured duration advances the owning virtual worker's
// clock; children become poppable at the simulated time their parent
// finished; every pop/update/push charges the cost model's spin-lock price.
// The result is the exact tree the real ASYNC mode would grow under that
// schedule, plus deterministic busy/wait/wall statistics.
func (b *Builder) buildAsyncVirtual(st *buildState) {
	maxLeaves := b.cfg.MaxLeaves()
	workers := b.pool.Workers()
	// Beginning phase: barrier-mode batches until the queue can feed every
	// virtual worker (the "X" phases of the paper's mix mode).
	for st.queue.Len() > 0 && st.queue.Len() < workers && st.leaves < maxLeaves {
		k := b.cfg.EffectiveK()
		if rem := maxLeaves - st.leaves; k > rem {
			k = rem
		}
		batch := st.queue.PopBatch(k)
		b.processBatch(st, batch)
		b.cWarmup.Inc()
	}
	if st.queue.Len() == 0 || st.leaves >= maxLeaves {
		b.drainQueue(st)
		return
	}

	type pendItem struct {
		c     grow.Candidate
		ready int64
	}
	var pending []pendItem
	for {
		c, ok := st.queue.Pop()
		if !ok {
			break
		}
		pending = append(pending, pendItem{c: c})
	}
	clocks := make([]int64, workers)
	busy := make([]int64, workers)
	lock := b.pool.Cost().SpinLock.Nanoseconds()
	acc := b.acc
	var serial, tasks int64
	for len(pending) > 0 && st.leaves < maxLeaves {
		// The earliest-free virtual worker pops next.
		w := 0
		for j := 1; j < workers; j++ {
			if clocks[j] < clocks[w] {
				w = j
			}
		}
		t := clocks[w]
		// Best candidate already pushed by time t (loose TopK: each worker
		// grabs the best it can see).
		best := -1
		var minReady int64 = math.MaxInt64
		for i := range pending {
			if pending[i].ready <= t {
				if best < 0 || betterCandidate(pending[i].c, pending[best].c) {
					best = i
				}
			}
			if pending[i].ready < minReady {
				minReady = pending[i].ready
			}
		}
		if best < 0 {
			// Idle until the next candidate arrives: simulated queue wait.
			b.cQueueEmpty.Inc()
			acc.Add(w, perf.QueueWait, minReady-t)
			clocks[w] = minReady
			continue
		}
		it := pending[best]
		pending = append(pending[:best], pending[best+1:]...)
		st.leaves++
		tasks++

		tm := profile.StartTimer()
		parent := st.nodes[it.c.NodeID]
		s := parent.split
		l, r := st.t.AddChildren(it.c.NodeID, s.Feature, s.Bin,
			b.ds.Cuts.UpperBound(int(s.Feature), s.Bin), s.DefaultLeft, s.Gain)
		left := &nodeState{sum: gh.Pair{G: s.LeftG, H: s.LeftH}, split: tree.InvalidSplit()}
		right := &nodeState{sum: gh.Pair{G: s.RightG, H: s.RightH}, split: tree.InvalidSplit()}
		st.nodes = append(st.nodes, left, right)
		childDepth := it.c.Depth + 1
		b.cAsyncNodes.Inc()
		var profBefore [3]int64
		if acc != nil {
			profBefore = [3]int64{
				b.prof.Nanos(profile.ApplySplit),
				b.prof.Nanos(profile.BuildHist),
				b.prof.Nanos(profile.FindSplit),
			}
		}
		b.asyncProcessNode(st, parent, left, right, childDepth, nil)
		d := tm.Elapsed().Nanoseconds()
		serial += d

		dur := d + 3*lock // pop + tree update + push acquisitions
		done := t + dur
		clocks[w] = done
		busy[w] += dur
		if acc != nil {
			// Attribute the node's serial duration to the owning virtual
			// worker, split by the breakdown's phase laps; the (small)
			// remainder outside the laps is Other. Clamping keeps the
			// per-worker total exactly d even if another goroutine's laps
			// interleave (they cannot in virtual mode, but stay safe).
			rem := d
			deltas := [3]int64{
				b.prof.Nanos(profile.ApplySplit) - profBefore[0],
				b.prof.Nanos(profile.BuildHist) - profBefore[1],
				b.prof.Nanos(profile.FindSplit) - profBefore[2],
			}
			phases := [3]perf.Phase{perf.PhaseApplySplit, perf.PhaseBuildHist, perf.PhaseFindSplit}
			for i, dp := range deltas {
				if dp > rem {
					dp = rem
				}
				acc.AddPhased(w, phases[i], dp)
				rem -= dp
			}
			acc.AddPhased(w, perf.PhaseOther, rem)
			acc.Add(w, perf.SpinWait, 3*lock)
		}
		for i, ns := range []*nodeState{left, right} {
			id := l
			if i == 1 {
				id = r
			}
			tn := &st.t.Nodes[id]
			tn.SumG, tn.SumH, tn.Count = ns.sum.G, ns.sum.H, ns.count
			tn.Weight = b.cfg.Params.CalcWeight(ns.sum.G, ns.sum.H)
			if ns.split.Valid() {
				pending = append(pending, pendItem{
					c:     grow.Candidate{NodeID: id, Gain: ns.split.Gain, Depth: childDepth, Count: ns.count},
					ready: done,
				})
			} else {
				b.releaseHist(ns)
			}
		}
	}
	for _, it := range pending {
		b.releaseHist(st.nodes[it.c.NodeID])
	}
	var wall int64
	for _, c := range clocks {
		if c > wall {
			wall = c
		}
	}
	var busySum, wait int64
	for w := 0; w < workers; w++ {
		busySum += busy[w]
		wait += wall - busy[w]
	}
	// Per-worker conservation: each worker has accounted exactly clocks[w]
	// so far (claim durations plus queue-wait jumps); the gap to the region
	// wall is the end-of-tree barrier.
	if acc != nil {
		for w := 0; w < workers; w++ {
			acc.Add(w, perf.BarrierWait, wall-clocks[w])
		}
	}
	b.pool.RecordExternalRegion(tasks, serial, busySum, wait, wall)
}

// betterCandidate orders loose-TopK pops: higher gain first, then lower
// node id (insertion order proxy) for determinism.
func betterCandidate(a, b grow.Candidate) bool {
	if a.Gain != b.Gain {
		return a.Gain > b.Gain
	}
	return a.NodeID < b.NodeID
}
