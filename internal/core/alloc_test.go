package core

import (
	"testing"

	"harpgbdt/internal/grow"
	"harpgbdt/internal/invariant"
	"harpgbdt/internal/tree"
)

// TestAccumulateAllocsPinnedAtZero is the core-side companion of the
// histogram kernel alloc tests: Builder.accumulate is a hotalloc root (the
// BuildHist driver every mode funnels through), so its full block sweep
// must not touch the heap.
func TestAccumulateAllocsPinnedAtZero(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	if invariant.Enabled {
		t.Skip("the harpdebug invariant layer is allowed to allocate")
	}
	for _, memBuf := range []bool{true, false} {
		ds := testDataset(t, 512, 6)
		grad := dyadicGradients(512, 11)
		cfg := Config{
			Mode: Sync, K: 4, Growth: grow.Leafwise, TreeSize: 6,
			FeatureBlockSize: 2, Params: tree.DefaultSplitParams(),
			Workers: 1, UseMemBuf: memBuf,
		}
		b, err := NewBuilder(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		st := b.newBuildState(grad)
		ns := st.nodes[0]
		if ns.rows.Len() == 0 {
			t.Fatal("root row set is empty")
		}
		h := b.hpool.Get()
		sweep := func() {
			for fb := 0; fb < b.blocks.NumBlocks(); fb++ {
				b.accumulate(h, st, ns, 0, ns.rows.Len(), fb, fullBinRange)
			}
		}
		sweep() // warm up
		if allocs := testing.AllocsPerRun(50, sweep); allocs != 0 {
			t.Errorf("memBuf=%v: accumulate sweep allocates %.1f times per run", memBuf, allocs)
		}
		b.hpool.Put(h)
	}
}
