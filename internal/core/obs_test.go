package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"harpgbdt/internal/grow"
	"harpgbdt/internal/obs"
	"harpgbdt/internal/tree"
)

// TestTracingCoversEngineSpans builds trees in barrier and async modes with
// tracing enabled and checks the trace contains the span taxonomy the
// observability layer promises (tree / phase / block-task, plus per-node
// spans in async mode), on the right lanes.
func TestTracingCoversEngineSpans(t *testing.T) {
	o := obs.NewWith(obs.NewRegistry())
	o.EnableTracing(0)
	obs.SetDefault(o)
	defer obs.SetDefault(nil)

	ds := testDataset(t, 3000, 12)
	grad := dyadicGradients(ds.NumRows(), 7)
	for _, mode := range []Mode{Sync, Async} {
		b, err := NewBuilder(Config{Mode: mode, K: 8, Growth: grow.Leafwise, TreeSize: 6,
			UseMemBuf: true, FeatureBlockSize: 4, NodeBlockSize: 8,
			Params: tree.DefaultSplitParams(), Workers: 2}, ds)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.BuildTree(grad); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := o.Tracer.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
			Ph  string `json:"ph"`
			TID int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	cats := map[string]int{}
	workerLane := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		cats[ev.Cat]++
		if ev.TID > 0 {
			workerLane = true
		}
	}
	for _, want := range []string{"tree", "phase", "block-task", "node", "sched"} {
		if cats[want] == 0 {
			t.Errorf("no %q spans in trace (got %v)", want, cats)
		}
	}
	if !workerLane {
		t.Error("no spans on worker lanes (tid > 0)")
	}
}

// TestEngineMetricsAccumulate checks the package-level engine counters move
// when trees are built (they live in the default registry, so this also
// pins the registration names the docs advertise).
func TestEngineMetricsAccumulate(t *testing.T) {
	before := map[string]int64{
		"trees": mTreesBuilt.Value(), "nodes": mNodesSplit.Value(), "rows": mBuildHistRows.Value(),
	}
	ds := testDataset(t, 2000, 8)
	grad := dyadicGradients(ds.NumRows(), 3)
	buildWith(t, Config{Mode: Async, K: 8, Growth: grow.Leafwise, TreeSize: 5,
		UseMemBuf: true, FeatureBlockSize: 4, NodeBlockSize: 8,
		Params: tree.DefaultSplitParams(), Workers: 2}, ds, grad)
	if d := mTreesBuilt.Value() - before["trees"]; d != 1 {
		t.Errorf("trees_built_total moved by %d, want 1", d)
	}
	if d := mNodesSplit.Value() - before["nodes"]; d <= 0 {
		t.Errorf("nodes_split_total did not move")
	}
	if d := mBuildHistRows.Value() - before["rows"]; d <= 0 {
		t.Errorf("buildhist_rows_total did not move")
	}
	var buf bytes.Buffer
	if err := obs.DefaultRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trees_built_total", "queue_depth", "spinmutex_contended_acquires_total"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("default registry exposition missing %s", want)
		}
	}
}
