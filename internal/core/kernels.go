package core

import (
	"harpgbdt/internal/histogram"
	"harpgbdt/internal/invariant"
	"harpgbdt/internal/obs"
	"harpgbdt/internal/perf"
	"harpgbdt/internal/profile"
)

// binRange is one bin-block of the MP kernel.
type binRange struct {
	lo, hi uint8
}

// fullBinRange covers every real bin (255 is the missing sentinel and never
// accumulated).
var fullBinRange = binRange{0, 255}

// binRanges expands the configured bin block size into task ranges.
func (b *Builder) binRanges() []binRange {
	blk := b.cfg.BinBlockSize
	if blk <= 0 || blk >= 255 {
		return []binRange{fullBinRange}
	}
	var out []binRange
	for lo := 0; lo < 255; lo += blk {
		hi := lo + blk
		if hi > 255 {
			hi = 255
		}
		out = append(out, binRange{uint8(lo), uint8(hi)})
	}
	return out
}

// buildHistBatch builds the histograms of the listed nodes using the
// configured mode's kernel. In SYNC (and the ASYNC warm-up phase) the
// kernel is chosen per batch: few nodes => DP (row parallelism), many
// nodes => MP (block parallelism).
func (b *Builder) buildHistBatch(st *buildState, ids []int32) {
	if len(ids) == 0 {
		return
	}
	sp := obs.StartSpan("phase", "BuildHist")
	prevPhase := b.acc.SetPhase(perf.PhaseBuildHist)
	defer b.acc.SetPhase(prevPhase)
	tm := profile.StartTimer()
	mode := b.cfg.Mode
	if mode == Sync || mode == Async {
		// Mixed mode (DP, MP, DP): model parallelism needs enough
		// ⟨node, feature block⟩ tasks to feed every worker; below that
		// (the beginning phase: few nodes, many rows each) data
		// parallelism's row blocks keep the workers busy.
		if len(ids)*b.blocks.NumBlocks() < b.pool.Workers() {
			mode = DP
		} else {
			mode = MP
		}
	}
	if mode == DP {
		b.buildHistDP(st, ids)
	} else {
		b.buildHistMP(st, ids)
	}
	if invariant.Enabled {
		for _, id := range ids {
			invariant.HistFeatureTotals(st.nodes[id].hist, st.nodes[id].sum, "core.buildHistBatch")
		}
	}
	b.prof.Stop(profile.BuildHist, tm)
	sp.End()
}

// accumulate adds rows [lo, hi) of node state ns into h for feature block fb
// and bin range br, selecting the MemBuf / gathered-gradient kernel variant.
func (b *Builder) accumulate(h *histogram.Hist, st *buildState, ns *nodeState, lo, hi, fb int, br binRange) {
	fLo, fHi, panel := b.blocks.Block(fb)
	w := fHi - fLo
	if invariant.Enabled {
		invariant.PanelBins(panel, w, fLo, ns.rows, lo, hi, b.layout, "core.accumulate")
	}
	filtered := br.lo > 0 || br.hi < 255
	if ns.rows.Mem != nil {
		mb := ns.rows.Mem[lo:hi]
		if filtered {
			h.AccumulatePanelRowsBinRange(panel, w, mb, fLo, fHi, br.lo, br.hi)
		} else {
			h.AccumulatePanelRows(panel, w, mb, fLo, fHi)
		}
		return
	}
	rows := ns.rows.Rows[lo:hi]
	if filtered {
		h.AccumulatePanelRowsGradBinRange(panel, w, rows, st.grad, fLo, fHi, br.lo, br.hi)
	} else {
		h.AccumulatePanelRowsGrad(panel, w, rows, st.grad, fLo, fHi)
	}
}

// buildHistDP is the data-parallel kernel: per-worker histogram replicas
// accumulated over ⟨node, row block, feature block⟩ tasks, then reduced.
// node_blk_size nodes share one parallel region, so the region (barrier)
// count is ceil(len(ids)/node_blk_size) accumulation regions plus as many
// reduction regions.
func (b *Builder) buildHistDP(st *buildState, ids []int32) {
	nodeBlk := b.cfg.NodeBlockSize
	workers := b.pool.Workers()
	rowBlk := b.cfg.RowBlockSize
	if rowBlk <= 0 {
		rowBlk = (b.ds.NumRows() + workers - 1) / workers
	}
	nb := b.blocks.NumBlocks()
	totalBins := b.layout.TotalBins()
	for g := 0; g < len(ids); g += nodeBlk {
		end := g + nodeBlk
		if end > len(ids) {
			end = len(ids)
		}
		group := ids[g:end]
		for _, id := range group {
			st.nodes[id].hist = b.hpool.Get()
			mBuildHistRows.Add(int64(st.nodes[id].rows.Len()))
		}
		replicas := make([][]*histogram.Hist, workers)
		for w := range replicas {
			replicas[w] = make([]*histogram.Hist, len(group))
		}
		var tasks []func(int)
		for gi, id := range group {
			ns := st.nodes[id]
			nRows := ns.rows.Len()
			for lo := 0; lo < nRows; lo += rowBlk {
				hi := lo + rowBlk
				if hi > nRows {
					hi = nRows
				}
				for fb := 0; fb < nb; fb++ {
					gi, lo, hi, fb, ns := gi, lo, hi, fb, ns
					tasks = append(tasks, func(w int) {
						tsp := obs.StartSpanTID("block-task", "hist-dp", w+1)
						ttm := profile.StartTimer()
						rep := replicas[w][gi]
						if rep == nil {
							rep = b.hpool.Get()
							replicas[w][gi] = rep
						}
						b.accumulate(rep, st, ns, lo, hi, fb, fullBinRange)
						mBlockTaskSeconds.Observe(ttm.Elapsed().Seconds())
						tsp.End()
					})
				}
			}
		}
		b.pool.RunTasks(tasks)
		// Replica reduction, parallel over (node, histogram range). The
		// cost of this region grows with the number of nodes — the DP
		// scaling limit of Fig. 11.
		const reduceChunk = 16384
		var rtasks []func(int)
		for gi, id := range group {
			target := st.nodes[id].hist
			for lo := 0; lo < totalBins; lo += reduceChunk {
				hi := lo + reduceChunk
				if hi > totalBins {
					hi = totalBins
				}
				gi, lo, hi, target := gi, lo, hi, target
				rtasks = append(rtasks, func(rw int) {
					tsp := obs.StartSpanTID("block-task", "hist-reduce", rw+1)
					for w := 0; w < workers; w++ {
						if rep := replicas[w][gi]; rep != nil {
							target.AddRange(rep, lo, hi)
						}
					}
					tsp.End()
				})
			}
		}
		b.pool.RunTasks(rtasks)
		for w := range replicas {
			for _, rep := range replicas[w] {
				if rep != nil {
					b.hpool.Put(rep)
				}
			}
		}
	}
}

// buildHistMP is the model-parallel kernel: ⟨node group, feature block, bin
// block⟩ tasks write directly into the owning node's GHSum region, so no
// replicas and no reduction are needed and the whole batch is one parallel
// region. node_blk_size controls task granularity (write-region size versus
// schedulable task count).
func (b *Builder) buildHistMP(st *buildState, ids []int32) {
	nodeBlk := b.cfg.NodeBlockSize
	nb := b.blocks.NumBlocks()
	ranges := b.binRanges()
	for _, id := range ids {
		st.nodes[id].hist = b.hpool.Get()
		mBuildHistRows.Add(int64(st.nodes[id].rows.Len()))
	}
	var tasks []func(int)
	for g := 0; g < len(ids); g += nodeBlk {
		end := g + nodeBlk
		if end > len(ids) {
			end = len(ids)
		}
		group := ids[g:end]
		for fb := 0; fb < nb; fb++ {
			for _, br := range ranges {
				group, fb, br := group, fb, br
				tasks = append(tasks, func(w int) {
					tsp := obs.StartSpanTID("block-task", "hist-mp", w+1)
					ttm := profile.StartTimer()
					for _, id := range group {
						ns := st.nodes[id]
						b.accumulate(ns.hist, st, ns, 0, ns.rows.Len(), fb, br)
					}
					mBlockTaskSeconds.Observe(ttm.Elapsed().Seconds())
					tsp.End()
				})
			}
		}
	}
	b.pool.RunTasks(tasks)
}
