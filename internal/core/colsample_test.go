package core

import (
	"testing"

	"harpgbdt/internal/grow"
	"harpgbdt/internal/tree"
)

func TestColSampleRestrictsSplitFeatures(t *testing.T) {
	ds := testDataset(t, 2000, 16)
	grad := dyadicGradients(2000, 201)
	b, err := NewBuilder(Config{Mode: Sync, K: 8, Growth: grow.Leafwise, TreeSize: 5,
		ColSampleByTree: 0.25, Seed: 5, Params: tree.DefaultSplitParams()}, ds)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := b.BuildTree(grad)
	if err != nil {
		t.Fatal(err)
	}
	if b.colMask == nil {
		t.Fatal("no column mask drawn")
	}
	allowedCount := 0
	for _, a := range b.colMask {
		if a {
			allowedCount++
		}
	}
	if allowedCount == 0 || allowedCount == 16 {
		t.Fatalf("mask allows %d of 16 features", allowedCount)
	}
	for i := range bt.Tree.Nodes {
		n := &bt.Tree.Nodes[i]
		if n.IsLeaf() {
			continue
		}
		if !b.colMask[n.Feature] {
			t.Fatalf("split on masked feature %d", n.Feature)
		}
	}
}

func TestColSampleMaskChangesPerTree(t *testing.T) {
	ds := testDataset(t, 1000, 16)
	grad := dyadicGradients(1000, 203)
	b, err := NewBuilder(Config{Mode: Sync, K: 4, Growth: grow.Leafwise, TreeSize: 4,
		ColSampleByTree: 0.5, Seed: 7, Params: tree.DefaultSplitParams()}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.BuildTree(grad); err != nil {
		t.Fatal(err)
	}
	mask1 := append([]bool(nil), b.colMask...)
	if _, err := b.BuildTree(grad); err != nil {
		t.Fatal(err)
	}
	same := true
	for f := range mask1 {
		if mask1[f] != b.colMask[f] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("mask identical across trees (sampling not advancing)")
	}
}

func TestColSampleDisabledEqualsBaseline(t *testing.T) {
	ds := testDataset(t, 1500, 8)
	grad := dyadicGradients(1500, 205)
	ref := buildWith(t, Config{Mode: DP, K: 4, Growth: grow.Leafwise, TreeSize: 5,
		Params: tree.DefaultSplitParams()}, ds, grad)
	for _, cs := range []float64{0, 1} {
		got := buildWith(t, Config{Mode: DP, K: 4, Growth: grow.Leafwise, TreeSize: 5,
			ColSampleByTree: cs, Params: tree.DefaultSplitParams()}, ds, grad)
		if !treesEquivalent(ref, got) {
			t.Fatalf("colsample=%g changed the tree", cs)
		}
	}
}

func TestColSampleAsync(t *testing.T) {
	ds := testDataset(t, 1500, 12)
	grad := dyadicGradients(1500, 207)
	b, err := NewBuilder(Config{Mode: Async, K: 8, Growth: grow.Leafwise, TreeSize: 5,
		ColSampleByTree: 0.3, Seed: 9, Params: tree.DefaultSplitParams()}, ds)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := b.BuildTree(grad)
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range bt.Tree.Nodes {
		n := &bt.Tree.Nodes[i]
		if !n.IsLeaf() && !b.colMask[n.Feature] {
			t.Fatalf("async split on masked feature %d", n.Feature)
		}
	}
}

func TestColSampleValidation(t *testing.T) {
	if err := (Config{ColSampleByTree: -0.1}).Validate(); err == nil {
		t.Fatal("negative colsample accepted")
	}
	if err := (Config{ColSampleByTree: 1.5}).Validate(); err == nil {
		t.Fatal("colsample > 1 accepted")
	}
}
