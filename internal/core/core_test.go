package core

import (
	"math"
	"testing"

	"harpgbdt/internal/dataset"
	"harpgbdt/internal/gh"
	"harpgbdt/internal/grow"
	"harpgbdt/internal/synth"
	"harpgbdt/internal/tree"
)

// testDataset builds a deterministic synthetic dataset.
func testDataset(t *testing.T, rows, features int) *dataset.Dataset {
	t.Helper()
	ds, err := synth.Make(synth.Config{Spec: synth.SynSet, Rows: rows, Features: features, Seed: 99}, 32)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// dyadicGradients produces gradients whose sums are exact in any order, so
// every parallel schedule builds bit-identical histograms.
func dyadicGradients(n int, seed uint64) gh.Buffer {
	grad := gh.NewBuffer(n)
	s := seed
	for i := range grad {
		s = s*6364136223846793005 + 1442695040888963407
		g := float64(int64(s>>40)%4097-2048) / 1024
		s = s*6364136223846793005 + 1442695040888963407
		h := float64((s>>40)%1024+64) / 1024
		grad[i] = gh.Pair{G: g, H: h}
	}
	return grad
}

// treesEquivalent compares two trees structurally from the root, ignoring
// node numbering (children may be appended in different batch orders).
func treesEquivalent(a, b *tree.Tree) bool {
	var eq func(ai, bi int32) bool
	eq = func(ai, bi int32) bool {
		an, bn := a.Nodes[ai], b.Nodes[bi]
		if an.IsLeaf() != bn.IsLeaf() {
			return false
		}
		if an.Count != bn.Count || math.Abs(an.SumG-bn.SumG) > 1e-9 || math.Abs(an.SumH-bn.SumH) > 1e-9 {
			return false
		}
		if an.IsLeaf() {
			return math.Abs(an.Weight-bn.Weight) < 1e-9
		}
		if an.Feature != bn.Feature || an.SplitBin != bn.SplitBin || an.DefaultLeft != bn.DefaultLeft {
			return false
		}
		if math.Abs(an.Gain-bn.Gain) > 1e-9 {
			return false
		}
		return eq(an.Left, bn.Left) && eq(an.Right, bn.Right)
	}
	return eq(0, 0)
}

func buildWith(t *testing.T, cfg Config, ds *dataset.Dataset, grad gh.Buffer) *tree.Tree {
	t.Helper()
	b, err := NewBuilder(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := b.BuildTree(grad)
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.Tree.Validate(); err != nil {
		t.Fatalf("invalid tree: %v", err)
	}
	return bt.Tree
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Mode: Mode(9)},
		{K: -1},
		{TreeSize: 31},
		{TreeSize: -1},
		{RowBlockSize: -1},
		{NodeBlockSize: -2},
		{FeatureBlockSize: -1},
		{BinBlockSize: -1},
		{MaxDepth: -1},
		{Params: tree.SplitParams{Lambda: -1}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestConfigDerived(t *testing.T) {
	c := Config{TreeSize: 8}
	if c.MaxLeaves() != 128 {
		t.Fatalf("maxleaves %d", c.MaxLeaves())
	}
	c.Growth = grow.Depthwise
	if c.DepthLimit() != 7 {
		t.Fatalf("depthwise depth limit %d", c.DepthLimit())
	}
	if c.EffectiveK() <= 1000 {
		t.Fatalf("depthwise default K should be whole level: %d", c.EffectiveK())
	}
	c.Growth = grow.Leafwise
	if c.DepthLimit() != 0 {
		t.Fatalf("leafwise depth limit %d", c.DepthLimit())
	}
	if c.EffectiveK() != 1 {
		t.Fatalf("leafwise default K %d", c.EffectiveK())
	}
	c.K = 16
	if c.EffectiveK() != 16 {
		t.Fatalf("explicit K %d", c.EffectiveK())
	}
	c.MaxDepth = 5
	if c.DepthLimit() != 5 {
		t.Fatalf("leafwise max depth %d", c.DepthLimit())
	}
}

func TestModeString(t *testing.T) {
	if DP.String() != "DP" || MP.String() != "MP" || Sync.String() != "SYNC" || Async.String() != "ASYNC" {
		t.Fatal("mode names")
	}
	if Mode(7).String() == "" {
		t.Fatal("unknown mode")
	}
}

// TestBarrierModesBuildIdenticalTrees is the central determinism test: at
// a FIXED K, every barrier mode, block configuration and memory option must
// build the exact same tree from the same (dyadic) gradients. (Different K
// legitimately grows a different leafwise tree once the leaf budget binds —
// that is the paper's TopK trade-off, covered by the convergence tests.)
func TestBarrierModesBuildIdenticalTrees(t *testing.T) {
	ds := testDataset(t, 3000, 12)
	grad := dyadicGradients(3000, 5)
	ref := buildWith(t, Config{Mode: DP, K: 8, Growth: grow.Leafwise, TreeSize: 6,
		Params: tree.DefaultSplitParams()}, ds, grad)
	configs := []Config{
		{Mode: DP, K: 8, TreeSize: 6, NodeBlockSize: 8},
		{Mode: DP, K: 8, TreeSize: 6, FeatureBlockSize: 3, RowBlockSize: 100},
		{Mode: DP, K: 8, TreeSize: 6, UseMemBuf: true},
		{Mode: MP, K: 8, TreeSize: 6, FeatureBlockSize: 1},
		{Mode: MP, K: 8, TreeSize: 6, FeatureBlockSize: 4, NodeBlockSize: 4},
		{Mode: MP, K: 8, TreeSize: 6, FeatureBlockSize: 2, BinBlockSize: 8, UseMemBuf: true},
		{Mode: Sync, K: 8, TreeSize: 6, FeatureBlockSize: 4, UseMemBuf: true},
		{Mode: DP, K: 8, TreeSize: 6, DisableSubtraction: true},
		{Mode: MP, K: 8, TreeSize: 6, FeatureBlockSize: 4, DisableSubtraction: true, UseMemBuf: true},
		{Mode: DP, K: 8, TreeSize: 6, Workers: 1},
		{Mode: MP, K: 8, TreeSize: 6, Workers: 1, FeatureBlockSize: 4},
	}
	for i, cfg := range configs {
		cfg.Growth = grow.Leafwise
		cfg.Params = tree.DefaultSplitParams()
		got := buildWith(t, cfg, ds, grad)
		if !treesEquivalent(ref, got) {
			t.Errorf("config %d (%+v) built a different tree: %d vs %d nodes",
				i, cfg, got.NumNodes(), ref.NumNodes())
		}
	}
}

// TestK1ModesMatchAcrossKernels pins the K=1 (standard leafwise) case
// separately: DP, MP and SYNC kernels must agree at K=1 too.
func TestK1ModesMatchAcrossKernels(t *testing.T) {
	ds := testDataset(t, 2000, 8)
	grad := dyadicGradients(2000, 6)
	ref := buildWith(t, Config{Mode: DP, K: 1, Growth: grow.Leafwise, TreeSize: 5,
		Params: tree.DefaultSplitParams()}, ds, grad)
	for _, cfg := range []Config{
		{Mode: MP, K: 1, TreeSize: 5, FeatureBlockSize: 1},
		{Mode: MP, K: 1, TreeSize: 5, FeatureBlockSize: 4, UseMemBuf: true},
		{Mode: Sync, K: 1, TreeSize: 5, FeatureBlockSize: 2},
	} {
		cfg.Growth = grow.Leafwise
		cfg.Params = tree.DefaultSplitParams()
		if got := buildWith(t, cfg, ds, grad); !treesEquivalent(ref, got) {
			t.Errorf("K=1 config %+v built a different tree", cfg)
		}
	}
}

func TestDepthwiseKSubsetEqualsFullLevel(t *testing.T) {
	// Paper Sec. IV-B: depthwise TopK with any K builds the same tree as
	// full depthwise.
	ds := testDataset(t, 2000, 8)
	grad := dyadicGradients(2000, 9)
	full := buildWith(t, Config{Mode: DP, Growth: grow.Depthwise, TreeSize: 5,
		Params: tree.DefaultSplitParams()}, ds, grad)
	for _, k := range []int{1, 2, 3, 7} {
		got := buildWith(t, Config{Mode: DP, Growth: grow.Depthwise, K: k, TreeSize: 5,
			Params: tree.DefaultSplitParams()}, ds, grad)
		if !treesEquivalent(full, got) {
			t.Errorf("depthwise K=%d differs from full depthwise", k)
		}
	}
}

func TestLeafBudgetRespected(t *testing.T) {
	ds := testDataset(t, 4000, 8)
	grad := dyadicGradients(4000, 11)
	for _, d := range []int{2, 3, 5, 7} {
		for _, mode := range []Mode{DP, MP, Sync, Async} {
			cfg := Config{Mode: mode, K: 8, Growth: grow.Leafwise, TreeSize: d,
				FeatureBlockSize: 4, UseMemBuf: true, Params: tree.DefaultSplitParams()}
			tr := buildWith(t, cfg, ds, grad)
			if got, max := tr.NumLeaves(), 1<<(d-1); got > max {
				t.Errorf("mode %v D=%d: %d leaves > budget %d", mode, d, got, max)
			}
		}
	}
}

func TestDepthCapRespected(t *testing.T) {
	ds := testDataset(t, 3000, 8)
	grad := dyadicGradients(3000, 13)
	for _, mode := range []Mode{DP, Async} {
		cfg := Config{Mode: mode, K: 4, Growth: grow.Leafwise, TreeSize: 10, MaxDepth: 3,
			Params: tree.DefaultSplitParams()}
		tr := buildWith(t, cfg, ds, grad)
		if tr.MaxDepth() > 3 {
			t.Errorf("mode %v: depth %d > cap 3", mode, tr.MaxDepth())
		}
	}
	// Depthwise D implies depth D-1.
	cfg := Config{Mode: DP, Growth: grow.Depthwise, TreeSize: 4, Params: tree.DefaultSplitParams()}
	tr := buildWith(t, cfg, ds, grad)
	if tr.MaxDepth() > 3 {
		t.Errorf("depthwise D=4: depth %d > 3", tr.MaxDepth())
	}
}

func TestAsyncTreeValidAndComplete(t *testing.T) {
	ds := testDataset(t, 5000, 12)
	grad := dyadicGradients(5000, 17)
	b, err := NewBuilder(Config{Mode: Async, K: 32, Growth: grow.Leafwise, TreeSize: 7,
		FeatureBlockSize: 4, NodeBlockSize: 4, UseMemBuf: true,
		Params: tree.DefaultSplitParams()}, ds)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := b.BuildTree(grad)
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every row must land in a leaf, and leaf counts must match.
	leafCount := map[int32]int32{}
	for _, leaf := range bt.LeafOf {
		if leaf < 0 {
			t.Fatal("row without leaf assignment")
		}
		if !bt.Tree.Nodes[leaf].IsLeaf() {
			t.Fatal("row assigned to internal node")
		}
		leafCount[leaf]++
	}
	for id, cnt := range leafCount {
		if bt.Tree.Nodes[id].Count != cnt {
			t.Fatalf("leaf %d count %d, assigned %d", id, bt.Tree.Nodes[id].Count, cnt)
		}
	}
	if bt.Tree.NumLeaves() > 64 {
		t.Fatalf("leaf budget exceeded: %d", bt.Tree.NumLeaves())
	}
}

func TestAsyncMatchesBarrierTotals(t *testing.T) {
	// ASYNC may grow a different tree shape (loose TopK), but the root
	// split and the grand totals must agree with the barrier modes.
	ds := testDataset(t, 3000, 8)
	grad := dyadicGradients(3000, 19)
	sync := buildWith(t, Config{Mode: Sync, K: 8, Growth: grow.Leafwise, TreeSize: 6,
		Params: tree.DefaultSplitParams()}, ds, grad)
	async := buildWith(t, Config{Mode: Async, K: 8, Growth: grow.Leafwise, TreeSize: 6,
		Params: tree.DefaultSplitParams()}, ds, grad)
	sr, ar := sync.Root(), async.Root()
	if sr.Feature != ar.Feature || sr.SplitBin != ar.SplitBin {
		t.Fatalf("root split differs: (%d,%d) vs (%d,%d)", sr.Feature, sr.SplitBin, ar.Feature, ar.SplitBin)
	}
	if sr.SumG != ar.SumG || sr.SumH != ar.SumH || sr.Count != ar.Count {
		t.Fatal("root totals differ")
	}
}

func TestLeafOfConsistencyAllModes(t *testing.T) {
	ds := testDataset(t, 2000, 8)
	grad := dyadicGradients(2000, 23)
	for _, mode := range []Mode{DP, MP, Sync, Async} {
		for _, mem := range []bool{false, true} {
			cfg := Config{Mode: mode, K: 8, Growth: grow.Leafwise, TreeSize: 5,
				FeatureBlockSize: 4, UseMemBuf: mem, Params: tree.DefaultSplitParams()}
			b, err := NewBuilder(cfg, ds)
			if err != nil {
				t.Fatal(err)
			}
			bt, err := b.BuildTree(grad)
			if err != nil {
				t.Fatal(err)
			}
			// LeafOf must agree with walking the tree on binned rows.
			for i := 0; i < ds.NumRows(); i += 37 {
				want := bt.Tree.PredictRowBinned(ds.Binned.Row(i))
				if bt.LeafOf[i] != want {
					t.Fatalf("mode %v mem=%v: row %d leaf %d, tree walk says %d",
						mode, mem, i, bt.LeafOf[i], want)
				}
			}
		}
	}
}

func TestRegionCountDropsWithKAndNodeBlock(t *testing.T) {
	// The paper's core claim (Sec. IV-D): batching K candidates with
	// node_blk_size H cuts the number of parallel regions (barriers) from
	// O(L) to O(L/H).
	ds := testDataset(t, 4000, 8)
	grad := dyadicGradients(4000, 29)
	run := func(k, nodeBlk int) int64 {
		b, err := NewBuilder(Config{Mode: DP, K: k, NodeBlockSize: nodeBlk,
			Growth: grow.Leafwise, TreeSize: 7, Params: tree.DefaultSplitParams()}, ds)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.BuildTree(grad); err != nil {
			t.Fatal(err)
		}
		return b.Pool().Stats().Regions
	}
	leafByLeaf := run(1, 1)
	batched := run(32, 32)
	if batched*2 >= leafByLeaf {
		t.Fatalf("batched regions %d not much smaller than leaf-by-leaf %d", batched, leafByLeaf)
	}
}

func TestAsyncFewerRegionsThanSync(t *testing.T) {
	ds := testDataset(t, 4000, 8)
	grad := dyadicGradients(4000, 31)
	run := func(mode Mode) int64 {
		b, err := NewBuilder(Config{Mode: mode, K: 8, Growth: grow.Leafwise, TreeSize: 7,
			FeatureBlockSize: 4, UseMemBuf: true, Params: tree.DefaultSplitParams()}, ds)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.BuildTree(grad); err != nil {
			t.Fatal(err)
		}
		return b.Pool().Stats().Regions
	}
	if a, s := run(Async), run(Sync); a >= s {
		t.Fatalf("ASYNC regions %d >= SYNC regions %d", a, s)
	}
}

func TestBuilderRejectsBadInput(t *testing.T) {
	ds := testDataset(t, 100, 4)
	b, err := NewBuilder(DefaultConfig(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.BuildTree(gh.NewBuffer(50)); err == nil {
		t.Fatal("wrong gradient length accepted")
	}
	if _, err := NewBuilder(Config{Mode: Mode(5)}, ds); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestZeroGradientsSingleLeaf(t *testing.T) {
	// All-zero gradients: no split can gain, tree stays a single root leaf.
	ds := testDataset(t, 500, 4)
	grad := gh.NewBuffer(500)
	for i := range grad {
		grad[i] = gh.Pair{G: 0, H: 1}
	}
	for _, mode := range []Mode{DP, MP, Sync, Async} {
		cfg := Config{Mode: mode, K: 8, Growth: grow.Leafwise, TreeSize: 6,
			Params: tree.DefaultSplitParams()}
		tr := buildWith(t, cfg, ds, grad)
		if tr.NumNodes() != 1 {
			t.Errorf("mode %v: %d nodes, want 1", mode, tr.NumNodes())
		}
		if w := tr.Root().Weight; w != 0 {
			t.Errorf("mode %v: root weight %v", mode, w)
		}
	}
}

func TestConstantFeaturesSingleLeaf(t *testing.T) {
	d := dataset.NewDense(200, 3)
	for i := 0; i < 200; i++ {
		for f := 0; f < 3; f++ {
			d.Set(i, f, 1.0)
		}
	}
	ds, err := dataset.FromDense("const", d, make([]float32, 200), 16)
	if err != nil {
		t.Fatal(err)
	}
	grad := dyadicGradients(200, 3)
	tr := buildWith(t, Config{Mode: DP, K: 4, Growth: grow.Leafwise, TreeSize: 6,
		Params: tree.DefaultSplitParams()}, ds, grad)
	if tr.NumNodes() != 1 {
		t.Fatalf("constant features grew %d nodes", tr.NumNodes())
	}
}

func TestTinyDataset(t *testing.T) {
	d := dataset.NewDense(2, 1)
	d.Set(0, 0, 0)
	d.Set(1, 0, 1)
	ds, err := dataset.FromDense("tiny", d, []float32{0, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	grad := gh.Buffer{{G: 1, H: 1}, {G: -1, H: 1}}
	params := tree.SplitParams{Lambda: 1, Gamma: 0.01, MinChildWeight: 0.5}
	for _, mode := range []Mode{DP, MP, Sync, Async} {
		tr := buildWith(t, Config{Mode: mode, K: 2, Growth: grow.Leafwise, TreeSize: 3,
			Params: params}, ds, grad)
		if tr.NumLeaves() != 2 {
			t.Errorf("mode %v: tiny dataset leaves %d, want 2", mode, tr.NumLeaves())
		}
	}
}

func TestSingleRowDataset(t *testing.T) {
	d := dataset.NewDense(1, 2)
	ds, err := dataset.FromDense("one", d, []float32{1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := buildWith(t, Config{Mode: Async, TreeSize: 4, Params: tree.DefaultSplitParams()},
		ds, gh.Buffer{{G: -0.5, H: 0.25}})
	if tr.NumNodes() != 1 {
		t.Fatalf("single row grew %d nodes", tr.NumNodes())
	}
}

func TestMissingHeavyDataset(t *testing.T) {
	// 80% missing values: splits must still be found and default directions
	// route rows correctly.
	d := dataset.NewDense(1000, 4)
	s := uint64(7)
	for i := 0; i < 1000; i++ {
		for f := 0; f < 4; f++ {
			s = s*6364136223846793005 + 1442695040888963407
			if s>>60 < 13 { // ~80%
				d.SetMissing(i, f)
			} else {
				d.Set(i, f, float32(s>>56))
			}
		}
	}
	ds, err := dataset.FromDense("sparse", d, make([]float32, 1000), 16)
	if err != nil {
		t.Fatal(err)
	}
	grad := dyadicGradients(1000, 41)
	for _, mode := range []Mode{DP, MP, Async} {
		cfg := Config{Mode: mode, K: 4, Growth: grow.Leafwise, TreeSize: 5,
			FeatureBlockSize: 2, UseMemBuf: true, Params: tree.SplitParams{Lambda: 1, Gamma: 0.01, MinChildWeight: 0.1}}
		b, err := NewBuilder(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		bt, err := b.BuildTree(grad)
		if err != nil {
			t.Fatal(err)
		}
		if err := bt.Tree.Validate(); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		for i := 0; i < 1000; i += 83 {
			if want := bt.Tree.PredictRowBinned(ds.Binned.Row(i)); bt.LeafOf[i] != want {
				t.Fatalf("mode %v: missing-heavy routing mismatch at row %d", mode, i)
			}
		}
	}
}

func TestBinBlockSizesAgree(t *testing.T) {
	ds := testDataset(t, 2000, 6)
	grad := dyadicGradients(2000, 43)
	ref := buildWith(t, Config{Mode: MP, K: 8, Growth: grow.Leafwise, TreeSize: 5,
		FeatureBlockSize: 2, Params: tree.DefaultSplitParams()}, ds, grad)
	for _, bb := range []int{1, 4, 16, 100, 255} {
		got := buildWith(t, Config{Mode: MP, K: 8, Growth: grow.Leafwise, TreeSize: 5,
			FeatureBlockSize: 2, BinBlockSize: bb, Params: tree.DefaultSplitParams()}, ds, grad)
		if !treesEquivalent(ref, got) {
			t.Errorf("bin block size %d built a different tree", bb)
		}
	}
}

func TestBuilderReusableAcrossRounds(t *testing.T) {
	ds := testDataset(t, 1000, 6)
	b, err := NewBuilder(Config{Mode: Sync, K: 8, Growth: grow.Leafwise, TreeSize: 5,
		Params: tree.DefaultSplitParams()}, ds)
	if err != nil {
		t.Fatal(err)
	}
	g1 := dyadicGradients(1000, 47)
	g2 := dyadicGradients(1000, 53)
	t1a, err := b.BuildTree(g1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.BuildTree(g2); err != nil {
		t.Fatal(err)
	}
	t1b, err := b.BuildTree(g1)
	if err != nil {
		t.Fatal(err)
	}
	if !treesEquivalent(t1a.Tree, t1b.Tree) {
		t.Fatal("builder state leaked across rounds")
	}
}

func TestHistogramPoolBounded(t *testing.T) {
	// The histogram pool must stay bounded by the active set, not the tree
	// size: the memory-footprint claim of model parallelism.
	ds := testDataset(t, 3000, 8)
	grad := dyadicGradients(3000, 59)
	b, err := NewBuilder(Config{Mode: MP, K: 8, Growth: grow.Leafwise, TreeSize: 8,
		FeatureBlockSize: 4, Params: tree.DefaultSplitParams()}, ds)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := b.BuildTree(grad)
	if err != nil {
		t.Fatal(err)
	}
	if alloc, nodes := b.HistogramsAllocated(), bt.Tree.NumNodes(); alloc > nodes/2+16 {
		t.Fatalf("histogram pool unbounded: %d allocations for %d nodes", alloc, nodes)
	}
}

func TestBuilderName(t *testing.T) {
	ds := testDataset(t, 100, 4)
	for mode, want := range map[Mode]string{DP: "harp-DP", MP: "harp-MP", Sync: "harp-SYNC", Async: "harp-ASYNC"} {
		b, err := NewBuilder(Config{Mode: mode, TreeSize: 4, Params: tree.DefaultSplitParams()}, ds)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name() != want {
			t.Errorf("name %q want %q", b.Name(), want)
		}
	}
}
