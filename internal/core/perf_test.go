package core

import (
	"sync/atomic"
	"testing"
	"time"

	"harpgbdt/internal/perf"
)

// perfCheckConfig is schedCheckConfig with the wait-state profiler
// attached.
func perfCheckConfig(workers int) Config {
	c := schedCheckConfig(workers)
	c.Perf = true
	return c
}

// burnFor spins CPU for roughly d; sleeping would park the goroutine and
// make straggler shapes depend on the Go scheduler's wake-up latency.
func burnFor(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// TestAsyncPerfConservation drives the real ASYNC worker loop through
// seeded Choreo interleavings and asserts the profiler's core invariant
// on each: every worker's state sum equals the accounted wall time
// (within the reports' 1% clock-skew budget), with the Work time further
// conserved across the phase breakdown.
func TestAsyncPerfConservation(t *testing.T) {
	const workers = 3
	ds := testDataset(t, 600, 6)
	grad := dyadicGradients(600, 5)
	for seed := uint64(1); seed <= 5; seed++ {
		b, err := NewBuilder(perfCheckConfig(workers), ds)
		if err != nil {
			t.Fatal(err)
		}
		buildUnderSchedule(t, workers, seed, grad, b)
		r := b.Perf().Snapshot()
		if r.WallSeconds <= 0 {
			t.Fatalf("seed %d: nothing accounted", seed)
		}
		if err := r.ConservationError(); err > 0.01 {
			t.Errorf("seed %d: conservation error %.2e > 1%% (worker sums %v, wall %g)",
				seed, err, r.WorkerSeconds, r.WallSeconds)
		}
		for w := 0; w < workers; w++ {
			var phase float64
			for p := perf.Phase(0); p < perf.NumPhases; p++ {
				phase += float64(b.Perf().PhaseNanos(w, p))
			}
			work := float64(b.Perf().StateNanos(w, perf.Work))
			if work > 0 && (phase < 0.999*work || phase > 1.001*work) {
				t.Errorf("seed %d: worker %d phase sum %g != work %g", seed, w, phase, work)
			}
		}
		if r.Counters["async_nodes_total"] == 0 {
			t.Errorf("seed %d: no ASYNC nodes counted", seed)
		}
	}
}

// TestAsyncVirtualPerfConservation: on the simulated machine the
// accounting is exact by construction — every region (barrier warm-up
// and the ASYNC discrete-event simulation alike) attributes precisely its
// wall span to every worker.
func TestAsyncVirtualPerfConservation(t *testing.T) {
	ds := testDataset(t, 1500, 6)
	grad := dyadicGradients(1500, 3)
	cfg := Config{
		Mode: Async, K: 8, Growth: schedCheckConfig(1).Growth, TreeSize: 10,
		MaxDepth: 6, Params: schedCheckConfig(1).Params,
		Workers: 8, Virtual: true, Perf: true,
	}
	b, err := NewBuilder(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.BuildTree(grad); err != nil {
		t.Fatal(err)
	}
	r := b.Perf().Snapshot()
	if r.WallSeconds <= 0 {
		t.Fatal("nothing accounted")
	}
	if err := r.ConservationError(); err > 1e-6 {
		t.Errorf("virtual conservation error %.2e, want exact (worker sums %v, wall %g)",
			err, r.WorkerSeconds, r.WallSeconds)
	}
	if r.Counters["async_nodes_total"] == 0 {
		t.Error("no simulated ASYNC nodes counted")
	}
	var queue float64
	for _, v := range r.StateSeconds[perf.QueueWait.String()] {
		queue += v
	}
	var spin float64
	for _, v := range r.StateSeconds[perf.SpinWait.String()] {
		spin += v
	}
	if spin <= 0 {
		t.Error("simulated ASYNC charged no SpinWait (cost model lock price missing)")
	}
	_ = queue // queue wait may legitimately be zero when candidates always outnumber workers
}

// TestAsyncStragglerShowsImbalance forces one worker to burn extra CPU
// after every node claim and asserts the profiler sees it: the straggler
// has the maximum Work time and the load-imbalance coefficient moves
// well away from balanced. The straggler is whichever worker claims a
// node first — on a single-core machine a fixed worker index may never
// be scheduled into the claim race at all.
func TestAsyncStragglerShowsImbalance(t *testing.T) {
	const workers = 3
	ds := testDataset(t, 4000, 6)
	grad := dyadicGradients(4000, 7)
	cfg := perfCheckConfig(workers)
	cfg.MaxDepth = 6 // ~64 leaves: enough nodes that the claim race stays busy
	b, err := NewBuilder(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	var straggler atomic.Int32
	straggler.Store(-1)
	asyncYield = func(worker int, point string) {
		if point != "claimed" {
			return
		}
		straggler.CompareAndSwap(-1, int32(worker))
		if straggler.Load() == int32(worker) {
			burnFor(200 * time.Microsecond)
		}
	}
	defer func() { asyncYield = nil }()
	if _, err := b.BuildTree(grad); err != nil {
		t.Fatal(err)
	}
	slow := int(straggler.Load())
	if slow < 0 {
		t.Fatal("no worker ever claimed a node")
	}
	r := b.Perf().Snapshot()
	work := r.StateSeconds[perf.Work.String()]
	maxW := 0
	for w := range work {
		if work[w] > work[maxW] {
			maxW = w
		}
	}
	if maxW != slow {
		t.Errorf("straggler is worker %d but worker %d has max work (%v)", slow, maxW, work)
	}
	if r.LoadImbalance < 1.3 {
		t.Errorf("load imbalance %.3f with a forced straggler, want >= 1.3 (work %v)", r.LoadImbalance, work)
	}
	if err := r.ConservationError(); err > 0.01 {
		t.Errorf("conservation error %.2e > 1%%", err)
	}
	// The straggler's slack must surface as the other workers' non-Work
	// time, not vanish: queue starvation, the end-of-region barrier, or
	// (on one core) launch-gap idle.
	var otherWait float64
	for w := 0; w < workers; w++ {
		if w == slow {
			continue
		}
		otherWait += r.StateSeconds[perf.BarrierWait.String()][w] +
			r.StateSeconds[perf.QueueWait.String()][w] +
			r.StateSeconds[perf.Idle.String()][w]
	}
	if otherWait <= 0 {
		t.Error("non-straggler workers recorded no wait time")
	}
}

// TestPerfDisabledByDefault: without Config.Perf the builder must not
// attach a ledger (the disabled cost is a nil check per site).
func TestPerfDisabledByDefault(t *testing.T) {
	ds := testDataset(t, 400, 5)
	grad := dyadicGradients(400, 9)
	b, err := NewBuilder(schedCheckConfig(2), ds)
	if err != nil {
		t.Fatal(err)
	}
	if b.Perf() != nil {
		t.Fatal("Perf accounting attached without Config.Perf")
	}
	if _, err := b.BuildTree(grad); err != nil {
		t.Fatal(err)
	}
}

// TestPerfDepthSyncsRecorded: barrier-mode batches must log their region
// counts under the batch depth (the O(2^D) barrier-growth measurement).
func TestPerfDepthSyncsRecorded(t *testing.T) {
	ds := testDataset(t, 1000, 6)
	grad := dyadicGradients(1000, 5)
	cfg := Config{
		Mode: Sync, K: 4, Growth: schedCheckConfig(1).Growth, TreeSize: 8,
		Params: schedCheckConfig(1).Params, Workers: 4, Virtual: true, Perf: true,
	}
	b, err := NewBuilder(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.BuildTree(grad); err != nil {
		t.Fatal(err)
	}
	r := b.Perf().Snapshot()
	if len(r.DepthSyncs) == 0 {
		t.Fatal("SYNC build recorded no per-depth barrier counts")
	}
	var total int64
	for _, n := range r.DepthSyncs {
		total += n
	}
	if total == 0 {
		t.Error("per-depth barrier counts all zero")
	}
}
