package core

// Paper-shape tests: assertions about qualitative behaviours the paper
// reports, checked at laptop scale.

import (
	"testing"

	"harpgbdt/internal/gh"
	"harpgbdt/internal/grow"
	"harpgbdt/internal/objective"
	"harpgbdt/internal/synth"
	"harpgbdt/internal/tree"
)

// TestCriteoLeafwiseGrowsDeepTrees reproduces the paper's Sec. V-F
// observation: on CRITEO's response-encoded features, leafwise growth
// keeps splitting inside one branch and builds much deeper trees than
// depthwise at the same leaf budget.
func TestCriteoLeafwiseGrowsDeepTrees(t *testing.T) {
	ds, err := synth.Make(synth.Config{Spec: synth.CriteoLike, Rows: 6000, Seed: 21}, 64)
	if err != nil {
		t.Fatal(err)
	}
	// First-round logistic gradients at base score.
	obj := objective.Logistic{}
	base := obj.BaseScore(ds.Labels)
	preds := make([]float64, ds.NumRows())
	for i := range preds {
		preds[i] = base
	}
	grad := gh.NewBuffer(ds.NumRows())
	obj.Gradients(preds, ds.Labels, grad)

	params := tree.SplitParams{Lambda: 1, Gamma: 0, MinChildWeight: 1}
	leaf := buildWith(t, Config{Mode: Sync, K: 1, Growth: grow.Leafwise, TreeSize: 8, Params: params}, ds, grad)
	depth := buildWith(t, Config{Mode: Sync, Growth: grow.Depthwise, TreeSize: 8, Params: params}, ds, grad)
	if leaf.MaxDepth() < depth.MaxDepth()+2 {
		t.Fatalf("leafwise depth %d not clearly deeper than depthwise %d on response-encoded data",
			leaf.MaxDepth(), depth.MaxDepth())
	}
}

// TestTopKDepthBetweenLeafwiseAndDepthwise: TopK is a mixture of the two
// growth methods, so its tree depth at the same budget must fall between
// them (Sec. IV-B).
func TestTopKDepthBetweenLeafwiseAndDepthwise(t *testing.T) {
	ds, err := synth.Make(synth.Config{Spec: synth.CriteoLike, Rows: 6000, Seed: 23}, 64)
	if err != nil {
		t.Fatal(err)
	}
	grad := dyadicGradients(6000, 3)
	params := tree.SplitParams{Lambda: 1, Gamma: 0, MinChildWeight: 0.5}
	depths := map[string]int{}
	leaf1 := buildWith(t, Config{Mode: Sync, K: 1, Growth: grow.Leafwise, TreeSize: 7, Params: params}, ds, grad)
	depths["K1"] = leaf1.MaxDepth()
	topk := buildWith(t, Config{Mode: Sync, K: 16, Growth: grow.Leafwise, TreeSize: 7, Params: params}, ds, grad)
	depths["K16"] = topk.MaxDepth()
	depthw := buildWith(t, Config{Mode: Sync, Growth: grow.Depthwise, TreeSize: 7, Params: params}, ds, grad)
	depths["depthwise"] = depthw.MaxDepth()
	if !(depths["depthwise"] <= depths["K16"] && depths["K16"] <= depths["K1"]) {
		t.Fatalf("TopK depth not between extremes: %v", depths)
	}
}

// TestVirtualHarpBeatsBaselineShapedConfig: on the simulated machine, the
// paper's HarpGBDT configuration must beat the leaf-by-leaf configuration
// of the same engine in simulated time at a large tree size — the paper's
// headline result in miniature, within one engine so only the parallel
// design differs.
func TestVirtualHarpBeatsBaselineShapedConfig(t *testing.T) {
	ds, err := synth.Make(synth.Config{Spec: synth.SynSet, Rows: 12000, Features: 32, Seed: 25}, 64)
	if err != nil {
		t.Fatal(err)
	}
	grad := dyadicGradients(12000, 5)
	vtime := func(cfg Config) int64 {
		cfg.Growth = grow.Leafwise
		cfg.Params = tree.DefaultSplitParams()
		cfg.Virtual = true
		cfg.Workers = 32
		b, err := NewBuilder(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.BuildTree(grad); err != nil {
			t.Fatal(err)
		}
		return b.Pool().VirtualNanos()
	}
	leafByLeaf := vtime(Config{Mode: DP, K: 1, TreeSize: 9, NodeBlockSize: 1})
	harp := vtime(Config{Mode: Async, K: 32, TreeSize: 9, FeatureBlockSize: 4, NodeBlockSize: 32, UseMemBuf: true})
	// Require a 1.5x margin: the exact ratio depends on serial-measurement
	// noise, but the ordering must be decisive.
	if harp*3 >= leafByLeaf*2 {
		t.Fatalf("harp config (%dms) not clearly faster than leaf-by-leaf DP (%dms) at D9",
			harp/1e6, leafByLeaf/1e6)
	}
}
