package core

import (
	"testing"
	"testing/quick"

	"harpgbdt/internal/grow"
	"harpgbdt/internal/tree"
)

// TestRandomConfigsBuildSameTree is the configuration-space property test:
// for ANY random block configuration (mode, blocks, MemBuf, subtraction,
// workers) at a fixed K, the barrier engines must produce the reference
// tree from dyadic gradients.
func TestRandomConfigsBuildSameTree(t *testing.T) {
	ds := testDataset(t, 1500, 9)
	grad := dyadicGradients(1500, 101)
	ref := buildWith(t, Config{Mode: DP, K: 4, Growth: grow.Leafwise, TreeSize: 5,
		Params: tree.DefaultSplitParams()}, ds, grad)
	f := func(modeRaw, fb, nb, rb, bb uint8, memBuf, noSub bool, workersRaw uint8) bool {
		cfg := Config{
			Mode:               Mode(int(modeRaw) % 3), // DP, MP, Sync
			K:                  4,
			Growth:             grow.Leafwise,
			TreeSize:           5,
			FeatureBlockSize:   int(fb % 12),
			NodeBlockSize:      int(nb % 9),
			RowBlockSize:       int(rb) * 16,
			BinBlockSize:       int(bb),
			UseMemBuf:          memBuf,
			DisableSubtraction: noSub,
			Workers:            int(workersRaw%8) + 1,
			Params:             tree.DefaultSplitParams(),
		}
		b, err := NewBuilder(cfg, ds)
		if err != nil {
			t.Logf("config rejected: %v", err)
			return false
		}
		bt, err := b.BuildTree(grad)
		if err != nil {
			t.Logf("build failed: %v", err)
			return false
		}
		if err := bt.Tree.Validate(); err != nil {
			t.Logf("invalid tree: %v", err)
			return false
		}
		return treesEquivalent(ref, bt.Tree)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomConfigsAsyncValid: ASYNC under random configurations always
// produces structurally valid trees within budget, with consistent leaf
// assignment.
func TestRandomConfigsAsyncValid(t *testing.T) {
	ds := testDataset(t, 1500, 9)
	grad := dyadicGradients(1500, 103)
	f := func(k, fb, nb uint8, memBuf, virtual bool, workersRaw uint8) bool {
		cfg := Config{
			Mode:             Async,
			K:                int(k%40) + 1,
			Growth:           grow.Leafwise,
			TreeSize:         5,
			FeatureBlockSize: int(fb % 12),
			NodeBlockSize:    int(nb % 9),
			UseMemBuf:        memBuf,
			Virtual:          virtual,
			Workers:          int(workersRaw%8) + 1,
			Params:           tree.DefaultSplitParams(),
		}
		b, err := NewBuilder(cfg, ds)
		if err != nil {
			return false
		}
		bt, err := b.BuildTree(grad)
		if err != nil {
			return false
		}
		if err := bt.Tree.Validate(); err != nil {
			t.Logf("invalid tree: %v", err)
			return false
		}
		if bt.Tree.NumLeaves() > 16 {
			return false
		}
		for i := 0; i < ds.NumRows(); i += 211 {
			if bt.LeafOf[i] != bt.Tree.PredictRowBinned(ds.Binned.Row(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
