// Package perf is the parallel-efficiency profiler: a low-overhead
// per-worker state machine that accounts every nanosecond of a training
// run to one of five wait states (Work, BarrierWait, SpinWait, QueueWait,
// Idle) and, within Work, to one of the paper's tree-building phases.
// It is the software substitute for the per-worker VTune breakdown the
// paper's evaluation rests on: effective CPU utilization, spin time and
// load imbalance across the DP/MP/SYNC/ASYNC modes (Figs. 4, 7-8), plus
// the per-depth synchronization counts behind the O(2^D) barrier-growth
// argument.
//
// The package is a leaf (std + obs only) so the scheduler can import it.
// Like profile.Timer, it is a clock boundary: the determinism-guarded
// engine packages never read the clock themselves — they drive a Cursor,
// and the clock reads happen here, feeding profiling state only.
//
// Accounting is conservation-by-construction: a Cursor attributes the
// full interval between Begin and End to exactly one state at a time,
// and the scheduler attributes each barrier region's full span to every
// worker (work + barrier wait for participants, idle for the rest), so
// per-worker state sums reproduce wall time without a separate audit.
// All entry points are nil-safe; a disabled run pays one nil check per
// call site and allocates nothing.
package perf

import (
	"sync"
	"sync/atomic"
	"time"
)

// State is one of the per-worker wait states. Every accounted nanosecond
// belongs to exactly one state.
type State int32

const (
	// Work is time executing engine code (kernels, partition, split
	// evaluation, queue maintenance). Its phase breakdown is tracked
	// separately.
	Work State = iota
	// BarrierWait is time blocked at an end-of-region barrier: the gap
	// between a worker finishing its share and the slowest worker
	// finishing (the paper's "OpenMP barrier overhead").
	BarrierWait
	// SpinWait is time acquiring a contended spin mutex (the paper's
	// "spin time" in the ASYNC mode).
	SpinWait
	// QueueWait is time an ASYNC worker found the shared candidate queue
	// empty and waited for in-flight nodes to publish children.
	QueueWait
	// Idle is time a worker was not enlisted in the running region at all
	// (regions narrower than the pool width).
	Idle
	// NumStates is the number of tracked states.
	NumStates
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Work:
		return "Work"
	case BarrierWait:
		return "BarrierWait"
	case SpinWait:
		return "SpinWait"
	case QueueWait:
		return "QueueWait"
	case Idle:
		return "Idle"
	default:
		return "State(?)"
	}
}

// Phase subdivides Work time by tree-building phase, mirroring the
// profile package's breakdown (Fig. 4 of the paper).
type Phase int32

const (
	// PhaseBuildHist is histogram accumulation (and subtraction).
	PhaseBuildHist Phase = iota
	// PhaseFindSplit is split-gain evaluation.
	PhaseFindSplit
	// PhaseApplySplit is tree expansion and row partitioning.
	PhaseApplySplit
	// PhaseOther is everything else (queue maintenance, gradient prep).
	PhaseOther
	// PhasePredict is inference work in the serving path.
	PhasePredict
	// NumPhases is the number of tracked phases.
	NumPhases
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseBuildHist:
		return "BuildHist"
	case PhaseFindSplit:
		return "FindSplit"
	case PhaseApplySplit:
		return "ApplySplit"
	case PhaseOther:
		return "Other"
	case PhasePredict:
		return "Predict"
	default:
		return "Phase(?)"
	}
}

// maxDepthTrack bounds the per-depth synchronization table (tree depth is
// capped at 30 by core.Config).
const maxDepthTrack = 32

// epoch anchors the package's monotonic nanosecond clock.
var epoch = time.Now()

// nanotime returns monotonic nanoseconds since package init.
func nanotime() int64 { return time.Since(epoch).Nanoseconds() }

// Counter is a named monotonic event counter owned by an Accounting.
// Nil-safe, so disabled runs can hold nil handles.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (non-positive deltas are ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Accounting is the per-run efficiency ledger: a workers x states nanos
// matrix, a workers x phases breakdown of Work, per-depth barrier counts
// and a registry of named event counters. One Accounting serves one
// training run (builder + pool); all methods are safe for concurrent use
// and nil-safe.
type Accounting struct {
	workers int
	phase   atomic.Int32 // current engine phase for barrier-region Work
	states  []atomic.Int64
	phases  []atomic.Int64
	depths  [maxDepthTrack]atomic.Int64
	cursors []Cursor

	mu       sync.Mutex
	counters map[string]*Counter
}

// NewAccounting returns a ledger for the given worker count.
func NewAccounting(workers int) *Accounting {
	if workers < 1 {
		workers = 1
	}
	a := &Accounting{
		workers:  workers,
		states:   make([]atomic.Int64, workers*int(NumStates)),
		phases:   make([]atomic.Int64, workers*int(NumPhases)),
		cursors:  make([]Cursor, workers),
		counters: make(map[string]*Counter),
	}
	a.phase.Store(int32(PhaseOther))
	for w := range a.cursors {
		a.cursors[w].acc = a
		a.cursors[w].worker = w
	}
	return a
}

// Workers returns the ledger's worker count (0 when nil).
func (a *Accounting) Workers() int {
	if a == nil {
		return 0
	}
	return a.workers
}

// SetPhase sets the engine phase that barrier-region Work is attributed
// to and returns the previous phase (for restore). The barrier engines
// bracket each region batch with it; the ASYNC mode uses per-cursor
// phases instead.
func (a *Accounting) SetPhase(p Phase) Phase {
	if a == nil {
		return PhaseOther
	}
	return Phase(a.phase.Swap(int32(p)))
}

// Add attributes nanos to state s of the given worker. Work time is
// bucketed under the current engine phase.
func (a *Accounting) Add(worker int, s State, nanos int64) {
	if a == nil || nanos <= 0 || worker < 0 || worker >= a.workers {
		return
	}
	a.states[worker*int(NumStates)+int(s)].Add(nanos)
	if s == Work {
		a.phases[worker*int(NumPhases)+int(a.phase.Load())].Add(nanos)
	}
}

// AddPhased attributes nanos of Work under an explicit phase (bypassing
// the engine-global phase; used by the ASYNC per-node pipeline).
func (a *Accounting) AddPhased(worker int, p Phase, nanos int64) {
	if a == nil || nanos <= 0 || worker < 0 || worker >= a.workers {
		return
	}
	a.states[worker*int(NumStates)+int(Work)].Add(nanos)
	a.phases[worker*int(NumPhases)+int(p)].Add(nanos)
}

// AddDepthSync records `regions` barrier synchronizations executed for a
// batch whose nodes sit at the given tree depth (the paper's O(2^D)
// barrier-growth measurement). Depths past the table cap clamp.
func (a *Accounting) AddDepthSync(depth int, regions int64) {
	if a == nil || regions <= 0 {
		return
	}
	if depth < 0 {
		depth = 0
	}
	if depth >= maxDepthTrack {
		depth = maxDepthTrack - 1
	}
	a.depths[depth].Add(regions)
}

// Counter returns (registering on first use) the named event counter.
// Names must be compile-time constants at call sites — harplint's
// obshygiene rule enforces this, keeping the perf schema grep-able.
func (a *Accounting) Counter(name string) *Counter {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.counters[name]
	if !ok {
		c = &Counter{}
		a.counters[name] = c
	}
	return c
}

// StateNanos returns the accumulated nanos of one worker/state cell.
func (a *Accounting) StateNanos(worker int, s State) int64 {
	if a == nil || worker < 0 || worker >= a.workers {
		return 0
	}
	return a.states[worker*int(NumStates)+int(s)].Load()
}

// PhaseNanos returns the accumulated Work nanos of one worker/phase cell.
func (a *Accounting) PhaseNanos(worker int, p Phase) int64 {
	if a == nil || worker < 0 || worker >= a.workers {
		return 0
	}
	return a.phases[worker*int(NumPhases)+int(p)].Load()
}

// WorkerNanos returns one worker's total across all states.
func (a *Accounting) WorkerNanos(worker int) int64 {
	var t int64
	for s := State(0); s < NumStates; s++ {
		t += a.StateNanos(worker, s)
	}
	return t
}

// Reset zeroes the ledger (counters keep their identity).
func (a *Accounting) Reset() {
	if a == nil {
		return
	}
	for i := range a.states {
		a.states[i].Store(0)
	}
	for i := range a.phases {
		a.phases[i].Store(0)
	}
	for i := range a.depths {
		a.depths[i].Store(0)
	}
	a.mu.Lock()
	for _, c := range a.counters {
		c.v.Store(0)
	}
	a.mu.Unlock()
}

// Cursor returns the preallocated cursor of the given worker (nil when
// the ledger is nil or the worker is out of range), so the ASYNC loop
// can attribute its own time with no allocation.
func (a *Accounting) Cursor(worker int) *Cursor {
	if a == nil || worker < 0 || worker >= a.workers {
		return nil
	}
	return &a.cursors[worker]
}

// Cursor attributes one worker's time by construction: every nanosecond
// between Begin and End lands in exactly one state (and, for Work, one
// phase). A nil cursor is inert, so instrumented loops need no
// enabled-branches of their own. A cursor must only be driven by its own
// worker.
type Cursor struct {
	acc    *Accounting
	worker int
	state  State
	phase  Phase
	mark   int64
	active bool
}

// Begin opens the cursor in state s (phase Other).
func (c *Cursor) Begin(s State) {
	if c == nil {
		return
	}
	c.state = s
	c.phase = PhaseOther
	c.mark = nanotime()
	c.active = true
}

// flush attributes the interval since the last transition to the current
// state and re-anchors the clock.
func (c *Cursor) flush() {
	t := nanotime()
	d := t - c.mark
	c.mark = t
	if d <= 0 {
		return
	}
	if c.state == Work {
		c.acc.AddPhased(c.worker, c.phase, d)
	} else {
		c.acc.Add(c.worker, c.state, d)
	}
}

// To transitions the cursor to state s, attributing the elapsed interval
// to the previous state.
func (c *Cursor) To(s State) {
	if c == nil || !c.active {
		return
	}
	c.flush()
	c.state = s
}

// SetPhase switches the Work phase, attributing the elapsed interval to
// the previous phase (or state, when not in Work).
func (c *Cursor) SetPhase(p Phase) {
	if c == nil || !c.active {
		return
	}
	c.flush()
	c.phase = p
}

// End closes the cursor, attributing the final interval.
func (c *Cursor) End() {
	if c == nil || !c.active {
		return
	}
	c.flush()
	c.active = false
}
