package perf

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var a *Accounting
	a.Add(0, Work, 100)
	a.AddPhased(0, PhaseBuildHist, 100)
	a.AddDepthSync(2, 1)
	a.SetPhase(PhaseBuildHist)
	a.Reset()
	a.EmitTrace()
	if a.Workers() != 0 {
		t.Errorf("nil Workers() = %d", a.Workers())
	}
	if c := a.Counter("x"); c != nil {
		t.Errorf("nil Counter() = %v", c)
	}
	var cnt *Counter
	cnt.Inc()
	cnt.Add(5)
	if cnt.Value() != 0 {
		t.Errorf("nil counter value = %d", cnt.Value())
	}
	var cur *Cursor
	cur.Begin(Work)
	cur.To(SpinWait)
	cur.SetPhase(PhaseFindSplit)
	cur.End()
	r := a.Snapshot()
	if r.Workers != 0 || r.WallSeconds != 0 {
		t.Errorf("nil snapshot = %+v", r)
	}
}

func TestAddAndBounds(t *testing.T) {
	a := NewAccounting(2)
	a.Add(0, Work, 100)
	a.Add(1, BarrierWait, 50)
	a.Add(-1, Work, 10) // out of range: dropped
	a.Add(2, Work, 10)  // out of range: dropped
	a.Add(0, Work, -5)  // non-positive: dropped
	if got := a.StateNanos(0, Work); got != 100 {
		t.Errorf("StateNanos(0, Work) = %d, want 100", got)
	}
	if got := a.StateNanos(1, BarrierWait); got != 50 {
		t.Errorf("StateNanos(1, BarrierWait) = %d, want 50", got)
	}
	if got := a.WorkerNanos(0); got != 100 {
		t.Errorf("WorkerNanos(0) = %d, want 100", got)
	}
}

func TestWorkBucketsUnderGlobalPhase(t *testing.T) {
	a := NewAccounting(1)
	prev := a.SetPhase(PhaseBuildHist)
	if prev != PhaseOther {
		t.Errorf("initial phase = %v, want Other", prev)
	}
	a.Add(0, Work, 100)
	a.SetPhase(PhaseFindSplit)
	a.Add(0, Work, 40)
	a.Add(0, BarrierWait, 7) // waits are not phase-bucketed
	if got := a.PhaseNanos(0, PhaseBuildHist); got != 100 {
		t.Errorf("PhaseNanos(BuildHist) = %d, want 100", got)
	}
	if got := a.PhaseNanos(0, PhaseFindSplit); got != 40 {
		t.Errorf("PhaseNanos(FindSplit) = %d, want 40", got)
	}
	if got := a.StateNanos(0, Work); got != 140 {
		t.Errorf("StateNanos(Work) = %d, want 140", got)
	}
}

func TestAddPhasedCountsAsWork(t *testing.T) {
	a := NewAccounting(1)
	a.AddPhased(0, PhaseApplySplit, 30)
	if got := a.StateNanos(0, Work); got != 30 {
		t.Errorf("AddPhased did not count as Work: %d", got)
	}
	if got := a.PhaseNanos(0, PhaseApplySplit); got != 30 {
		t.Errorf("PhaseNanos(ApplySplit) = %d, want 30", got)
	}
}

func TestSnapshotMath(t *testing.T) {
	a := NewAccounting(2)
	// Worker 0: 300ns work, 100ns barrier. Worker 1: 100ns work, 300ns idle.
	a.Add(0, Work, 300)
	a.Add(0, BarrierWait, 100)
	a.Add(1, Work, 100)
	a.Add(1, Idle, 300)
	r := a.Snapshot()
	if r.Workers != 2 {
		t.Fatalf("workers = %d", r.Workers)
	}
	wall := 400e-9
	if math.Abs(r.WallSeconds-wall) > 1e-15 {
		t.Errorf("wall = %g, want %g", r.WallSeconds, wall)
	}
	// Effective parallelism: (300+100)/400 = 1.0 worker's worth.
	if math.Abs(r.EffectiveParallelism-1.0) > 1e-9 {
		t.Errorf("effective parallelism = %g, want 1.0", r.EffectiveParallelism)
	}
	// Imbalance: max 300 over mean 200 = 1.5.
	if math.Abs(r.LoadImbalance-1.5) > 1e-9 {
		t.Errorf("load imbalance = %g, want 1.5", r.LoadImbalance)
	}
	// Work share: 400 of 800 accounted ns.
	if math.Abs(r.StateShares[Work.String()]-0.5) > 1e-9 {
		t.Errorf("work share = %g, want 0.5", r.StateShares[Work.String()])
	}
	if err := r.ConservationError(); err > 1e-12 {
		t.Errorf("conservation error = %g on exactly-conserved input", err)
	}
}

func TestConservationErrorDetectsGap(t *testing.T) {
	a := NewAccounting(2)
	a.Add(0, Work, 1000)
	a.Add(1, Work, 500) // 50% short of wall
	if err := a.Snapshot().ConservationError(); math.Abs(err-0.5) > 1e-9 {
		t.Errorf("conservation error = %g, want 0.5", err)
	}
}

func TestDepthSyncsTrimmedAndClamped(t *testing.T) {
	a := NewAccounting(1)
	a.AddDepthSync(0, 2)
	a.AddDepthSync(3, 4)
	a.AddDepthSync(-5, 1)   // clamps to 0
	a.AddDepthSync(1000, 1) // clamps to the last slot
	r := a.Snapshot()
	if len(r.DepthSyncs) != maxDepthTrack {
		t.Fatalf("depth syncs len = %d, want %d (clamped entry at the cap)", len(r.DepthSyncs), maxDepthTrack)
	}
	if r.DepthSyncs[0] != 3 || r.DepthSyncs[3] != 4 || r.DepthSyncs[maxDepthTrack-1] != 1 {
		t.Errorf("depth syncs = %v", r.DepthSyncs)
	}
	b := NewAccounting(1)
	b.AddDepthSync(2, 7)
	if ds := b.Snapshot().DepthSyncs; len(ds) != 3 || ds[2] != 7 {
		t.Errorf("trimmed depth syncs = %v, want [0 0 7]", ds)
	}
}

func TestCountersRegisterAndReset(t *testing.T) {
	a := NewAccounting(1)
	c := a.Counter("nodes_total")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	if c2 := a.Counter("nodes_total"); c2 != c {
		t.Error("Counter did not return the registered instance")
	}
	if names := a.CounterNames(); len(names) != 1 || names[0] != "nodes_total" {
		t.Errorf("CounterNames = %v", names)
	}
	r := a.Snapshot()
	if r.Counters["nodes_total"] != 3 {
		t.Errorf("snapshot counters = %v", r.Counters)
	}
	a.Reset()
	if c.Value() != 0 {
		t.Errorf("Reset kept counter value %d", c.Value())
	}
	if a.StateNanos(0, Work) != 0 {
		t.Error("Reset kept state nanos")
	}
}

// TestCursorConservation is the core invariant: a cursor attributes the
// whole Begin..End interval, so the worker's state sum equals the wall
// time of the instrumented section regardless of how many transitions
// happen in between.
func TestCursorConservation(t *testing.T) {
	a := NewAccounting(1)
	cur := a.Cursor(0)
	start := time.Now()
	cur.Begin(Work)
	cur.SetPhase(PhaseApplySplit)
	busyFor(200 * time.Microsecond)
	cur.SetPhase(PhaseBuildHist)
	busyFor(200 * time.Microsecond)
	cur.To(SpinWait)
	busyFor(100 * time.Microsecond)
	cur.To(Work)
	cur.SetPhase(PhaseFindSplit)
	busyFor(100 * time.Microsecond)
	cur.To(QueueWait)
	busyFor(100 * time.Microsecond)
	cur.End()
	wall := time.Since(start).Nanoseconds()

	total := a.WorkerNanos(0)
	if total > wall {
		t.Errorf("accounted %dns > wall %dns", total, wall)
	}
	// The only unaccounted time is the instants between the clock reads
	// inside flush() and the wall-clock reads here: microseconds at most.
	if slack := wall - total; slack > wall/10 {
		t.Errorf("accounted %dns misses wall %dns by %.1f%%", total, wall, 100*float64(slack)/float64(wall))
	}
	if a.StateNanos(0, SpinWait) == 0 || a.StateNanos(0, QueueWait) == 0 {
		t.Error("transitions did not land in their states")
	}
	var phaseSum int64
	for p := Phase(0); p < NumPhases; p++ {
		phaseSum += a.PhaseNanos(0, p)
	}
	if work := a.StateNanos(0, Work); phaseSum != work {
		t.Errorf("phase sum %d != work %d", phaseSum, work)
	}
}

func TestCursorInertWithoutBegin(t *testing.T) {
	a := NewAccounting(1)
	cur := a.Cursor(0)
	cur.To(SpinWait) // not active: ignored
	cur.End()
	if got := a.WorkerNanos(0); got != 0 {
		t.Errorf("inactive cursor recorded %dns", got)
	}
	if a.Cursor(5) != nil || a.Cursor(-1) != nil {
		t.Error("out-of-range cursor not nil")
	}
}

func TestConcurrentAdds(t *testing.T) {
	a := NewAccounting(4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Add(w, Work, 10)
				a.Counter("events_total").Inc()
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < 4; w++ {
		if got := a.StateNanos(w, Work); got != 10000 {
			t.Errorf("worker %d work = %d, want 10000", w, got)
		}
	}
	if got := a.Counter("events_total").Value(); got != 4000 {
		t.Errorf("counter = %d, want 4000", got)
	}
}

// busyFor spins for roughly d without sleeping (sleeps make the
// conservation slack scheduler-dependent).
func busyFor(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}
