package perf

import (
	"math"
	"sort"

	"harpgbdt/internal/obs"
)

// Report is the machine-readable snapshot of an Accounting: the
// per-worker wall-time matrices plus the derived efficiency coefficients
// the paper reads off VTune. All durations are seconds.
type Report struct {
	Workers int `json:"workers"`
	// StateSeconds maps each state name to its per-worker seconds.
	StateSeconds map[string][]float64 `json:"state_seconds"`
	// PhaseSeconds maps each phase name to its per-worker Work seconds.
	PhaseSeconds map[string][]float64 `json:"work_phase_seconds"`
	// WorkerSeconds is each worker's total across all states; by the
	// conservation invariant every entry approximates the run's
	// accounted wall time.
	WorkerSeconds []float64 `json:"worker_seconds"`
	// WallSeconds is the accounted wall time (max over WorkerSeconds).
	WallSeconds float64 `json:"wall_seconds"`
	// EffectiveParallelism is total Work over wall time: how many workers'
	// worth of useful computation the run sustained (the paper's
	// "effective CPU utilization" times the worker count).
	EffectiveParallelism float64 `json:"effective_parallelism"`
	// LoadImbalance is max over mean per-worker Work (1.0 = perfectly
	// balanced).
	LoadImbalance float64 `json:"load_imbalance"`
	// WorkCV is the coefficient of variation of per-worker Work.
	WorkCV float64 `json:"work_cv"`
	// StateShares maps each state to its share of total accounted time.
	StateShares map[string]float64 `json:"state_shares"`
	// DepthSyncs[d] counts barrier synchronizations for batches at tree
	// depth d (trailing zeros trimmed).
	DepthSyncs []int64 `json:"depth_syncs,omitempty"`
	// Counters are the named event counters.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Snapshot captures the ledger into a Report. Safe to call while workers
// are still recording (values are read atomically per cell).
func (a *Accounting) Snapshot() Report {
	if a == nil {
		return Report{}
	}
	r := Report{
		Workers:       a.workers,
		StateSeconds:  make(map[string][]float64, NumStates),
		PhaseSeconds:  make(map[string][]float64, NumPhases),
		WorkerSeconds: make([]float64, a.workers),
		StateShares:   make(map[string]float64, NumStates),
	}
	stateTotals := make([]float64, NumStates)
	var grand float64
	for s := State(0); s < NumStates; s++ {
		per := make([]float64, a.workers)
		for w := 0; w < a.workers; w++ {
			sec := float64(a.StateNanos(w, s)) / 1e9
			per[w] = sec
			r.WorkerSeconds[w] += sec
			stateTotals[s] += sec
			grand += sec
		}
		r.StateSeconds[s.String()] = per
	}
	for p := Phase(0); p < NumPhases; p++ {
		per := make([]float64, a.workers)
		for w := 0; w < a.workers; w++ {
			per[w] = float64(a.PhaseNanos(w, p)) / 1e9
		}
		r.PhaseSeconds[p.String()] = per
	}
	for _, t := range r.WorkerSeconds {
		if t > r.WallSeconds {
			r.WallSeconds = t
		}
	}
	if grand > 0 {
		for s := State(0); s < NumStates; s++ {
			r.StateShares[s.String()] = stateTotals[s] / grand
		}
	}
	work := r.StateSeconds[Work.String()]
	var workSum, workMax float64
	for _, v := range work {
		workSum += v
		if v > workMax {
			workMax = v
		}
	}
	if r.WallSeconds > 0 {
		r.EffectiveParallelism = workSum / r.WallSeconds
	}
	if mean := workSum / float64(a.workers); mean > 0 {
		r.LoadImbalance = workMax / mean
		var varSum float64
		for _, v := range work {
			varSum += (v - mean) * (v - mean)
		}
		r.WorkCV = math.Sqrt(varSum/float64(a.workers)) / mean
	}
	last := -1
	for d := 0; d < maxDepthTrack; d++ {
		if a.depths[d].Load() > 0 {
			last = d
		}
	}
	if last >= 0 {
		r.DepthSyncs = make([]int64, last+1)
		for d := 0; d <= last; d++ {
			r.DepthSyncs[d] = a.depths[d].Load()
		}
	}
	a.mu.Lock()
	if len(a.counters) > 0 {
		r.Counters = make(map[string]int64, len(a.counters))
		for name, c := range a.counters {
			r.Counters[name] = c.Value()
		}
	}
	a.mu.Unlock()
	return r
}

// BarrierShare returns the BarrierWait share of total accounted time.
func (r Report) BarrierShare() float64 { return r.StateShares[BarrierWait.String()] }

// ConservationError returns the largest relative deviation of any
// worker's state sum from the accounted wall time — the invariant the
// efficiency tables rest on (0 = exact, tests assert <= 1%).
func (r Report) ConservationError() float64 {
	if r.WallSeconds <= 0 {
		return 0
	}
	var worst float64
	for _, t := range r.WorkerSeconds {
		if dev := math.Abs(t-r.WallSeconds) / r.WallSeconds; dev > worst {
			worst = dev
		}
	}
	return worst
}

// EmitTrace writes the current cumulative per-worker state seconds as
// Chrome trace counter tracks ("C" events) on each worker's lane of the
// default tracer, so the efficiency timeline renders next to the span
// timeline in chrome://tracing / Perfetto. No-op when tracing is off.
func (a *Accounting) EmitTrace() {
	if a == nil || !obs.TracingEnabled() {
		return
	}
	for w := 0; w < a.workers; w++ {
		args := make([]obs.Arg, 0, int(NumStates))
		for s := State(0); s < NumStates; s++ {
			args = append(args, obs.Arg{Key: s.String(), Value: float64(a.StateNanos(w, s)) / 1e9})
		}
		obs.CounterTrack("perf", "state-seconds", w+1, args...)
	}
}

// CounterNames returns the registered counter names, sorted (tests and
// table renderers).
func (a *Accounting) CounterNames() []string {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.counters))
	for n := range a.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
