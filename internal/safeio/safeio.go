// Package safeio provides crash-safe file persistence for the model,
// checkpoint and dataset-cache writers: payloads are written to a
// temporary file in the destination directory, fsynced, and renamed over
// the target, so a crash mid-write never leaves a half-written file under
// the final name. Every file carries a 12-byte integrity footer
// (magic | payload length | IEEE CRC32) that readers verify, so a
// truncated or bit-flipped file fails loudly instead of deserializing
// into garbage.
package safeio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// footerMagic identifies the integrity footer ("HGFT": HarpGbdt FooTer).
const footerMagic = uint32(0x48474654)

// footerSize is the trailing footer length: magic + payload length + CRC32.
const footerSize = 12

// ErrCorrupt reports an integrity-footer verification failure.
type ErrCorrupt struct {
	Path   string
	Reason string
}

func (e *ErrCorrupt) Error() string {
	return fmt.Sprintf("safeio: %s: corrupt file: %s", e.Path, e.Reason)
}

// WriteFile atomically persists the payload produced by write: the bytes
// go to a temporary file in path's directory, an integrity footer is
// appended, the file is fsynced and renamed over path. On any error the
// temporary file is removed and the previous file at path (if any) is
// left untouched.
func WriteFile(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	crc := crc32.NewIEEE()
	cw := &countingWriter{w: io.MultiWriter(tmp, crc)}
	bw := bufio.NewWriter(cw)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	var footer [footerSize]byte
	binary.LittleEndian.PutUint32(footer[0:4], footerMagic)
	binary.LittleEndian.PutUint32(footer[4:8], uint32(cw.n))
	binary.LittleEndian.PutUint32(footer[8:12], crc.Sum32())
	if _, err = tmp.Write(footer[:]); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ReadFile reads path and, when an integrity footer is present, verifies
// the payload length and CRC32 and strips the footer. verified reports
// whether a footer was found; legacy files without one are returned
// as-is so pre-footer formats keep loading.
func ReadFile(path string) (payload []byte, verified bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	if len(data) < footerSize {
		return data, false, nil
	}
	foot := data[len(data)-footerSize:]
	if binary.LittleEndian.Uint32(foot[0:4]) != footerMagic {
		return data, false, nil
	}
	payload = data[:len(data)-footerSize]
	if n := binary.LittleEndian.Uint32(foot[4:8]); n != uint32(len(payload)) {
		return nil, true, &ErrCorrupt{Path: path,
			Reason: fmt.Sprintf("payload length %d does not match footer %d (truncated?)", len(payload), n)}
	}
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(foot[8:12]) {
		return nil, true, &ErrCorrupt{Path: path, Reason: "CRC32 mismatch"}
	}
	return payload, true, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
