package safeio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeStr(t *testing.T, path, s string) {
	t.Helper()
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, s)
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	writeStr(t, path, "hello world")
	got, verified, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !verified {
		t.Fatal("footer not detected")
	}
	if string(got) != "hello world" {
		t.Fatalf("payload %q", got)
	}
}

func TestEmptyPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	writeStr(t, path, "")
	got, verified, err := ReadFile(path)
	if err != nil || !verified || len(got) != 0 {
		t.Fatalf("got %q verified=%v err=%v", got, verified, err)
	}
}

func TestOverwriteIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	writeStr(t, path, "first")
	// A failing writer must leave the previous contents intact.
	sentinel := errors.New("midway failure")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial")
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err %v", err)
	}
	got, _, err := ReadFile(path)
	if err != nil || string(got) != "first" {
		t.Fatalf("previous contents lost: %q %v", got, err)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("leftover files: %v", entries)
	}
}

func TestTruncationDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	writeStr(t, path, strings.Repeat("payload!", 64))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut bytes out of the middle so the footer survives but the payload
	// shrinks: the length check must catch it.
	cut := append(append([]byte{}, data[:100]...), data[200:]...)
	if err := os.WriteFile(path, cut, 0o644); err != nil {
		t.Fatal(err)
	}
	_, verified, err := ReadFile(path)
	var ce *ErrCorrupt
	if !verified || !errors.As(err, &ce) {
		t.Fatalf("truncation not detected: verified=%v err=%v", verified, err)
	}
}

func TestBitFlipDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	writeStr(t, path, strings.Repeat("payload!", 64))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReadFile(path)
	var ce *ErrCorrupt
	if !errors.As(err, &ce) {
		t.Fatalf("bit flip not detected: %v", err)
	}
	if !strings.Contains(ce.Error(), "CRC32") {
		t.Fatalf("unhelpful error: %v", ce)
	}
}

func TestLegacyFileWithoutFooter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.json")
	if err := os.WriteFile(path, []byte(`{"k": "a plain pre-footer file"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, verified, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if verified {
		t.Fatal("legacy file claimed verified")
	}
	if !strings.HasPrefix(string(got), `{"k":`) {
		t.Fatalf("payload %q", got)
	}
}

func TestMissingFile(t *testing.T) {
	if _, _, err := ReadFile(filepath.Join(t.TempDir(), "nope")); !os.IsNotExist(err) {
		t.Fatalf("err %v", err)
	}
}
